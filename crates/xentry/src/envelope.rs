//! A non-ML baseline detector: per-exit-reason feature envelopes.
//!
//! The paper argues that identifying incorrect control flow needs a
//! *learned* classifier rather than simple validity checks. The natural
//! straw-man in between is an anomaly envelope: record, per VM exit reason,
//! the min/max of each counter over fault-free executions, and flag
//! anything outside. It needs no labeled incorrect samples (a practical
//! advantage over the tree), but it cannot exploit cross-feature structure
//! or tolerate rare-but-legal outliers — the comparison the `extensions`
//! experiment quantifies.

use crate::features::FeatureVec;
use mltree::Label;
use serde::{Deserialize, Serialize};
use sim_machine::ExitReason;

/// Per-feature \[min, max\] bounds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Bounds {
    min: [u64; 4],
    max: [u64; 4],
    samples: u64,
}

impl Bounds {
    fn new() -> Bounds {
        Bounds {
            min: [u64::MAX; 4],
            max: [0; 4],
            samples: 0,
        }
    }

    fn absorb(&mut self, f: &FeatureVec) {
        let cols = [f.rt, f.br, f.rm, f.wm];
        for (i, col) in cols.into_iter().enumerate() {
            self.min[i] = self.min[i].min(col);
            self.max[i] = self.max[i].max(col);
        }
        self.samples += 1;
    }

    fn contains(&self, f: &FeatureVec, slack: u64) -> bool {
        let cols = [f.rt, f.br, f.rm, f.wm];
        (0..4).all(|i| {
            cols[i].saturating_add(slack) >= self.min[i]
                && cols[i] <= self.max[i].saturating_add(slack)
        })
    }
}

/// The envelope detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvelopeDetector {
    per_vmer: Vec<Bounds>,
    /// Tolerance added to both envelope edges (absolute counter units).
    pub slack: u64,
    /// Minimum fault-free samples before a VMER's envelope is trusted;
    /// under-sampled reasons always pass (avoids FPs on rare exits).
    pub min_samples: u64,
}

impl EnvelopeDetector {
    /// Empty detector.
    pub fn new(slack: u64, min_samples: u64) -> EnvelopeDetector {
        EnvelopeDetector {
            per_vmer: vec![Bounds::new(); ExitReason::VMER_COUNT as usize],
            slack,
            min_samples,
        }
    }

    /// Learn from one fault-free execution.
    pub fn absorb(&mut self, f: &FeatureVec) {
        if let Some(b) = self.per_vmer.get_mut(f.vmer as usize) {
            b.absorb(f);
        }
    }

    /// Learn from a batch of fault-free executions.
    pub fn train(trace: &[FeatureVec], slack: u64, min_samples: u64) -> EnvelopeDetector {
        let mut d = EnvelopeDetector::new(slack, min_samples);
        for f in trace {
            d.absorb(f);
        }
        d
    }

    /// Classify: outside the learned envelope ⇒ incorrect.
    pub fn classify(&self, f: &FeatureVec) -> Label {
        match self.per_vmer.get(f.vmer as usize) {
            Some(b) if b.samples >= self.min_samples => {
                if b.contains(f, self.slack) {
                    Label::Correct
                } else {
                    Label::Incorrect
                }
            }
            // Unknown or under-sampled exit reason: fail open.
            _ => Label::Correct,
        }
    }

    /// Number of exit reasons with a trusted envelope.
    pub fn trained_vmers(&self) -> usize {
        self.per_vmer
            .iter()
            .filter(|b| b.samples >= self.min_samples)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(vmer: u16, rt: u64) -> FeatureVec {
        FeatureVec {
            vmer,
            rt,
            br: rt / 5,
            rm: rt / 4,
            wm: 30,
        }
    }

    #[test]
    fn flags_out_of_envelope_executions() {
        let trace: Vec<FeatureVec> = (0..50).map(|i| fv(17, 1000 + i)).collect();
        let d = EnvelopeDetector::train(&trace, 10, 5);
        assert_eq!(d.classify(&fv(17, 1025)), Label::Correct);
        assert_eq!(d.classify(&fv(17, 990)), Label::Correct, "within slack");
        assert_eq!(d.classify(&fv(17, 3000)), Label::Incorrect);
        assert_eq!(d.classify(&fv(17, 100)), Label::Incorrect);
    }

    #[test]
    fn undersampled_reasons_fail_open() {
        let trace = vec![fv(5, 800)];
        let d = EnvelopeDetector::train(&trace, 0, 5);
        assert_eq!(
            d.classify(&fv(5, 99_999)),
            Label::Correct,
            "1 sample < min 5"
        );
        assert_eq!(d.trained_vmers(), 0);
    }

    #[test]
    fn unknown_vmer_fails_open() {
        let d = EnvelopeDetector::new(0, 1);
        assert_eq!(d.classify(&fv(88, 1234)), Label::Correct);
    }

    #[test]
    fn envelopes_are_per_reason() {
        let mut trace = Vec::new();
        trace.extend((0..20).map(|i| fv(17, 500 + i)));
        trace.extend((0..20).map(|i| fv(32, 2000 + i)));
        let d = EnvelopeDetector::train(&trace, 0, 5);
        assert_eq!(d.trained_vmers(), 2);
        // A value normal for vmer 32 is anomalous for vmer 17.
        assert_eq!(d.classify(&fv(17, 2010)), Label::Incorrect);
        assert_eq!(d.classify(&fv(32, 2010)), Label::Correct);
    }

    #[test]
    fn serde_round_trip() {
        let trace: Vec<FeatureVec> = (0..30).map(|i| fv(3, 700 + i * 2)).collect();
        let d = EnvelopeDetector::train(&trace, 5, 5);
        let json = serde_json::to_string(&d).unwrap();
        let back: EnvelopeDetector = serde_json::from_str(&json).unwrap();
        for probe in [fv(3, 710), fv(3, 7000)] {
            assert_eq!(back.classify(&probe), d.classify(&probe));
        }
    }
}
