//! # xentry — hypervisor-level soft error detection
//!
//! Reproduction of the Xentry framework (Xu, Chiang, Huang — ICPP 2014):
//! a light-weight software layer between the hypervisor and its VMs that
//! detects CPU soft errors occurring *during hypervisor executions*, before
//! they propagate into guest VMs.
//!
//! Two detection techniques (paper §III):
//!
//! * **Runtime detection** ([`runtime`]) — always enabled: fatal hardware
//!   exceptions are parsed (benign debug-class events filtered out) and
//!   software assertions compiled into hypervisor code report boundary and
//!   critical-condition violations. These shorten detection latency.
//! * **VM transition detection** ([`detector`], [`features`]) — enabled at
//!   every VM entry: four hardware performance counters plus the VM exit
//!   reason form a 5-feature vector (Table I) classified by a decision /
//!   random tree trained offline on fault-injection traces. This limits
//!   error propagation by catching incorrect — but valid — control flow
//!   *before the guest resumes*.
//!
//! The [`shim::Xentry`] type wires both into the `xen-like` platform via
//! its `Monitor` hook, charging its own cycle costs so that the paper's
//! overhead experiments ([`overhead`]) measure rather than assume.
//!
//! ```
//! use xentry::{Xentry, XentryConfig};
//! use guest_sim::{workload_platform, Benchmark};
//! use sim_machine::VirtMode;
//!
//! // Xen + 1 guest VM running the postmark workload model.
//! let mut platform = workload_platform(
//!     Benchmark::Postmark, VirtMode::Para, /*cpus*/ 2, /*guests*/ 1,
//!     /*kernel scale*/ 8, /*seed*/ 1);
//! // Attach Xentry (collector mode: gather features, no model yet).
//! let mut shim = Xentry::collector();
//! platform.boot(1, &mut shim);
//! platform.run(1, 100, &mut shim);
//! assert_eq!(shim.trace.len(), 100); // one feature vector per VM entry
//! ```

pub mod codegen;
pub mod detector;
pub mod envelope;
pub mod features;
pub mod overhead;
pub mod recovery;
pub mod runtime;
pub mod shim;

pub use codegen::{compile_detector, emit_tree};
pub use detector::{BatchSpan, VmTransitionDetector};
pub use envelope::EnvelopeDetector;
pub use features::{FeatureVec, FEATURE_NAMES};
pub use overhead::{
    measure_overhead, measure_overhead_repeated, run_until_bursts, OverheadResult, OverheadSetup,
    OverheadSummary,
};
pub use recovery::CriticalState;
pub use runtime::{classify_exception, Detection, ExceptionClass, Technique};
pub use shim::{ShimCosts, Xentry, XentryConfig};
