//! The VM-transition detector: a trained tree deployed behind an
//! integer-compare interface.

use crate::features::{FeatureVec, FEATURE_NAMES};
use mltree::{DecisionTree, Label};
use serde::{Deserialize, Serialize};

/// A deployable VM-transition classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmTransitionDetector {
    tree: DecisionTree,
}

impl VmTransitionDetector {
    /// Wrap a trained tree. The tree must have been trained on the five
    /// Table-I features in canonical order.
    pub fn new(tree: DecisionTree) -> VmTransitionDetector {
        assert_eq!(
            tree.feature_names,
            FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            "detector tree must use the Table-I feature layout"
        );
        VmTransitionDetector { tree }
    }

    /// Classify one hypervisor execution.
    pub fn classify(&self, f: &FeatureVec) -> Label {
        self.tree.classify(&f.columns())
    }

    /// Comparisons needed to classify `f` (the in-hypervisor cost).
    pub fn classify_cost(&self, f: &FeatureVec) -> usize {
        self.tree.classify_cost(&f.columns())
    }

    /// Model statistics for reporting.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Node count.
    pub fn nr_nodes(&self) -> usize {
        self.tree.nr_nodes()
    }

    /// The underlying rules (Fig. 6-style dump).
    pub fn dump_rules(&self) -> String {
        self.tree.dump_rules()
    }

    /// The underlying tree (used by the code generator).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Serialize to JSON (the train-offline / deploy-in-hypervisor split).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("detector serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<VmTransitionDetector, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Stable 64-bit fingerprint of the deployed model (FNV-1a over the
    /// canonical JSON form). Two detectors with identical trees fingerprint
    /// identically across processes; fleet verdicts carry this so any
    /// classification can be traced back to the exact model that made it.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.to_json().as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltree::{Dataset, Sample, TrainConfig};

    fn toy_detector() -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        // Executions of VMER 17 normally retire < 100 instructions;
        // longer ones are incorrect.
        for i in 0..50u64 {
            d.push(Sample::new(vec![17, 40 + i % 30, 5, 3, 2], Label::Correct));
            d.push(Sample::new(vec![17, 200 + i, 25, 9, 6], Label::Incorrect));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    #[test]
    fn classifies_by_learned_threshold() {
        let det = toy_detector();
        let ok = FeatureVec {
            vmer: 17,
            rt: 55,
            br: 5,
            rm: 3,
            wm: 2,
        };
        let bad = FeatureVec {
            vmer: 17,
            rt: 230,
            br: 25,
            rm: 9,
            wm: 6,
        };
        assert_eq!(det.classify(&ok), Label::Correct);
        assert_eq!(det.classify(&bad), Label::Incorrect);
        assert!(det.classify_cost(&ok) >= 1);
        assert!(det.depth() >= 1);
    }

    #[test]
    #[should_panic(expected = "Table-I feature layout")]
    fn rejects_mismatched_feature_names() {
        let d = Dataset::new(&["bogus"]);
        let mut d2 = d;
        d2.push(Sample::new(vec![1], Label::Correct));
        d2.push(Sample::new(vec![2], Label::Incorrect));
        let tree = DecisionTree::train(&d2, &TrainConfig::decision_tree());
        VmTransitionDetector::new(tree);
    }

    #[test]
    fn json_round_trip() {
        let det = toy_detector();
        let back = VmTransitionDetector::from_json(&det.to_json()).unwrap();
        let f = FeatureVec {
            vmer: 17,
            rt: 230,
            br: 25,
            rm: 9,
            wm: 6,
        };
        assert_eq!(back.classify(&f), det.classify(&f));
    }
}
