//! The VM-transition detector: a trained tree deployed behind an
//! integer-compare interface.

use crate::features::{FeatureVec, FEATURE_NAMES};
use mltree::{CompiledTree, DecisionTree, Label};
use serde::{Deserialize, Serialize, Value};

/// Measurement of one [`classify_batch_timed`] call: the span a flight
/// tracer records for the batch.
///
/// [`classify_batch_timed`]: VmTransitionDetector::classify_batch_timed
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpan {
    /// Records classified in the batch.
    pub records: usize,
    /// Wall time of the compiled-arena walk, nanoseconds.
    pub elapsed_ns: u64,
}

impl BatchSpan {
    /// Amortized per-record cost (0 for an empty batch).
    pub fn per_record_ns(&self) -> u64 {
        self.elapsed_ns
            .checked_div(self.records as u64)
            .unwrap_or(0)
    }
}

/// A deployable VM-transition classifier.
///
/// Construction compiles the boxed tree into a flat arena
/// ([`CompiledTree`]) and caches the model fingerprint; the hot-path
/// entry points ([`classify`], [`classify_cost`], [`classify_batch`])
/// only ever touch the compiled form. The boxed tree is retained for
/// training-side work: rule dumps, pruning and the code generator.
///
/// [`classify`]: VmTransitionDetector::classify
/// [`classify_cost`]: VmTransitionDetector::classify_cost
/// [`classify_batch`]: VmTransitionDetector::classify_batch
#[derive(Debug, Clone)]
pub struct VmTransitionDetector {
    tree: DecisionTree,
    compiled: CompiledTree,
    fingerprint: u64,
}

/// The wire form: `{"tree": <DecisionTree>}`, the shape the derive used
/// to produce, so `results/detector.json` artifacts parse unchanged.
fn wire_value(tree: &DecisionTree) -> Value {
    Value::Object(vec![("tree".to_string(), tree.to_value())])
}

/// FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl VmTransitionDetector {
    /// Wrap a trained tree. The tree must have been trained on the five
    /// Table-I features in canonical order. Compiles the arena form and
    /// computes the fingerprint once, here; both are immutable for the
    /// detector's lifetime (a fleet hot-swap installs a whole new
    /// detector, so the compiled model and fingerprint swap atomically
    /// with it).
    pub fn new(tree: DecisionTree) -> VmTransitionDetector {
        assert_eq!(
            tree.feature_names,
            FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            "detector tree must use the Table-I feature layout"
        );
        let compiled = tree.compile();
        let json = serde_json::to_string(&wire_value(&tree)).expect("detector serializes");
        let fingerprint = fnv1a(json.as_bytes());
        VmTransitionDetector {
            tree,
            compiled,
            fingerprint,
        }
    }

    /// Classify one hypervisor execution.
    pub fn classify(&self, f: &FeatureVec) -> Label {
        self.compiled.classify(&f.columns())
    }

    /// Comparisons needed to classify `f` (the in-hypervisor cost).
    pub fn classify_cost(&self, f: &FeatureVec) -> usize {
        self.compiled.classify_cost(&f.columns())
    }

    /// Classify a batch of executions, one verdict per input. Feature
    /// columns are staged through a fixed stack chunk, so the only
    /// allocation is the caller's `out` buffer.
    pub fn classify_batch(&self, fs: &[FeatureVec], out: &mut [Label]) {
        self.classify_batch_with(mltree::BatchWalker::Auto, fs, out);
    }

    /// [`classify_batch`] with an explicit kernel choice — benchmarks
    /// pin kernels with this to attribute throughput to a specific
    /// walker; production callers should stay on the calibrated default.
    ///
    /// [`classify_batch`]: VmTransitionDetector::classify_batch
    pub fn classify_batch_with(
        &self,
        walker: mltree::BatchWalker,
        fs: &[FeatureVec],
        out: &mut [Label],
    ) {
        assert_eq!(
            fs.len(),
            out.len(),
            "classify_batch: inputs and out must have equal length"
        );
        // Staging-fused: the compiled tree packs each record's columns
        // straight into its kernel feature words, so there is no
        // intermediate row array — one read of the FeatureVec fields per
        // record, and the only allocation is the caller's `out` buffer.
        let base = fs.as_ptr();
        self.compiled.classify_batch_rows(
            walker,
            fs.len(),
            // SAFETY: classify_batch_rows documents it only passes
            // indices in 0..fs.len().
            |i| unsafe { (*base.add(i)).columns() },
            out,
        );
    }

    /// [`classify_batch`] wrapped in a measured span: classifies the
    /// batch and returns what a flight tracer needs to record it — the
    /// record count and the wall time of the compiled-arena walk itself,
    /// excluding any caller-side staging. This is the detector-level
    /// span hook the fleet's observability layer consumes; keeping the
    /// timing here means the traced cost is the classify call and
    /// nothing else.
    ///
    /// [`classify_batch`]: VmTransitionDetector::classify_batch
    pub fn classify_batch_timed(&self, fs: &[FeatureVec], out: &mut [Label]) -> BatchSpan {
        let t0 = std::time::Instant::now();
        self.classify_batch(fs, out);
        BatchSpan {
            records: fs.len(),
            elapsed_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// The compiled arena the hot path runs on.
    pub fn compiled(&self) -> &CompiledTree {
        &self.compiled
    }

    /// Harvest a branch-probability profile from observed verdict
    /// traffic: one checked walk per record, counting which side of each
    /// split was taken. The result feeds
    /// [`with_profiled_layout`](VmTransitionDetector::with_profiled_layout);
    /// profiles harvested against the *same arena layout* can be
    /// [merged](mltree::TreeProfile::merge) across shards before
    /// re-laying out.
    pub fn harvest_profile(&self, traffic: &[FeatureVec]) -> mltree::TreeProfile {
        let mut profile = mltree::TreeProfile::for_tree(&self.compiled);
        for f in traffic {
            profile.record(&self.compiled, &f.columns());
        }
        profile
    }

    /// The same model with its arena re-laid out hot-path-first from
    /// `profile` (see [`mltree::TreeProfile`]): identical tree, identical
    /// verdicts, identical fingerprint — so a fleet hot-swap publishing
    /// the profiled detector passes the canary gate by construction —
    /// but the hot path's records now sit in a contiguous prefix
    /// ([`CompiledTree::hot_prefix_bytes`]) the cache can actually hold.
    pub fn with_profiled_layout(&self, profile: &mltree::TreeProfile) -> VmTransitionDetector {
        VmTransitionDetector {
            compiled: self.compiled.reorder_profiled(profile),
            tree: self.tree.clone(),
            fingerprint: self.fingerprint,
        }
    }

    /// Structural integrity check of the compiled arena — the deploy-time
    /// gate the fleet's validated hot-swap runs before publishing a
    /// detector ([`CompiledTree::validate`]). A detector built by [`new`]
    /// always passes; a corrupted arena (bit flip in the model slab) can
    /// fail, and executing one through the unchecked walkers would be UB.
    ///
    /// [`new`]: VmTransitionDetector::new
    pub fn validate(&self) -> Result<(), mltree::ArenaFault> {
        self.compiled.validate()
    }

    /// Chaos-injection entry point: flip one bit of the compiled arena,
    /// leaving the boxed tree and cached fingerprint untouched — exactly
    /// the state a soft error in the deployed model's memory produces.
    /// The result is for feeding *into* validation gates (swap canaries,
    /// the fleet chaos harness), never for classifying with.
    pub fn chaos_flip_arena_bit(&mut self, bit: usize) {
        self.compiled.flip_bit(bit);
    }

    /// Defined bit count of the compiled arena (the
    /// [`chaos_flip_arena_bit`] fault space).
    ///
    /// [`chaos_flip_arena_bit`]: VmTransitionDetector::chaos_flip_arena_bit
    pub fn arena_logical_bits(&self) -> usize {
        self.compiled.logical_bits()
    }

    /// Model statistics for reporting.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Node count.
    pub fn nr_nodes(&self) -> usize {
        self.tree.nr_nodes()
    }

    /// Bytes of the compiled split arena the hot path walks — the
    /// model's cache footprint, exported as a fleet gauge.
    pub fn arena_bytes(&self) -> usize {
        self.compiled.arena_bytes()
    }

    /// Split records in the compiled arena (leaves cost zero bytes).
    pub fn nr_splits(&self) -> usize {
        self.compiled.nr_splits()
    }

    /// Bytes of the profile-weighted hot prefix — what the cache must
    /// hold to serve ≥90% of split visits after
    /// [`with_profiled_layout`](VmTransitionDetector::with_profiled_layout);
    /// equals [`arena_bytes`](VmTransitionDetector::arena_bytes) for an
    /// unprofiled layout.
    pub fn hot_prefix_bytes(&self) -> usize {
        self.compiled.hot_prefix_bytes()
    }

    /// The underlying rules (Fig. 6-style dump).
    pub fn dump_rules(&self) -> String {
        self.tree.dump_rules()
    }

    /// The underlying tree (used by the code generator).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Serialize to JSON (the train-offline / deploy-in-hypervisor split).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("detector serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<VmTransitionDetector, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Stable 64-bit fingerprint of the deployed model (FNV-1a over the
    /// canonical JSON form, computed once at construction). Two detectors
    /// with identical trees fingerprint identically across processes;
    /// fleet verdicts carry this so any classification can be traced back
    /// to the exact model that made it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl Serialize for VmTransitionDetector {
    fn to_value(&self) -> Value {
        // Only the tree crosses the wire; the arena and fingerprint are
        // derived state, rebuilt by `new` on the other side.
        wire_value(&self.tree)
    }
}

impl Deserialize for VmTransitionDetector {
    fn from_value(v: &Value) -> Result<VmTransitionDetector, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "VmTransitionDetector", v))?;
        let tree: DecisionTree = serde::field(obj, "tree", "VmTransitionDetector")?;
        if tree.feature_names
            != FEATURE_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        {
            return Err(serde::Error::msg(format!(
                "detector tree must use the Table-I feature layout, got {:?}",
                tree.feature_names
            )));
        }
        Ok(VmTransitionDetector::new(tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltree::{Dataset, Sample, TrainConfig};

    fn toy_detector() -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        // Executions of VMER 17 normally retire < 100 instructions;
        // longer ones are incorrect.
        for i in 0..50u64 {
            d.push(Sample::new(vec![17, 40 + i % 30, 5, 3, 2], Label::Correct));
            d.push(Sample::new(vec![17, 200 + i, 25, 9, 6], Label::Incorrect));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    #[test]
    fn classifies_by_learned_threshold() {
        let det = toy_detector();
        let ok = FeatureVec {
            vmer: 17,
            rt: 55,
            br: 5,
            rm: 3,
            wm: 2,
        };
        let bad = FeatureVec {
            vmer: 17,
            rt: 230,
            br: 25,
            rm: 9,
            wm: 6,
        };
        assert_eq!(det.classify(&ok), Label::Correct);
        assert_eq!(det.classify(&bad), Label::Incorrect);
        assert!(det.classify_cost(&ok) >= 1);
        assert!(det.depth() >= 1);
    }

    #[test]
    #[should_panic(expected = "Table-I feature layout")]
    fn rejects_mismatched_feature_names() {
        let d = Dataset::new(&["bogus"]);
        let mut d2 = d;
        d2.push(Sample::new(vec![1], Label::Correct));
        d2.push(Sample::new(vec![2], Label::Incorrect));
        let tree = DecisionTree::train(&d2, &TrainConfig::decision_tree());
        VmTransitionDetector::new(tree);
    }

    #[test]
    fn batch_matches_single_sample() {
        let det = toy_detector();
        // More than one chunk's worth, straddling the chunk boundary.
        let fs: Vec<FeatureVec> = (0..150u64)
            .map(|i| FeatureVec {
                vmer: 17,
                rt: 30 + i * 2,
                br: i % 30,
                rm: i % 11,
                wm: i % 7,
            })
            .collect();
        let mut out = vec![Label::Correct; fs.len()];
        det.classify_batch(&fs, &mut out);
        for (f, o) in fs.iter().zip(out) {
            assert_eq!(o, det.classify(f));
        }
    }

    #[test]
    fn timed_batch_matches_untimed_and_measures() {
        let det = toy_detector();
        let fs: Vec<FeatureVec> = (0..100u64)
            .map(|i| FeatureVec {
                vmer: 17,
                rt: 30 + i * 3,
                br: i % 20,
                rm: i % 5,
                wm: i % 3,
            })
            .collect();
        let mut plain = vec![Label::Correct; fs.len()];
        det.classify_batch(&fs, &mut plain);
        let mut timed = vec![Label::Correct; fs.len()];
        let span = det.classify_batch_timed(&fs, &mut timed);
        assert_eq!(plain, timed, "the span wrapper must not change verdicts");
        assert_eq!(span.records, fs.len());
        assert!(span.per_record_ns() <= span.elapsed_ns);
        let empty = BatchSpan {
            records: 0,
            elapsed_ns: 0,
        };
        assert_eq!(empty.per_record_ns(), 0);
    }

    #[test]
    fn profiled_layout_preserves_verdicts_and_fingerprint() {
        let det = toy_detector();
        let traffic: Vec<FeatureVec> = (0..200u64)
            .map(|i| FeatureVec {
                vmer: 17,
                rt: 30 + (i * 7) % 250,
                br: i % 30,
                rm: i % 11,
                wm: i % 7,
            })
            .collect();
        let profile = det.harvest_profile(&traffic);
        assert!(
            det.compiled().nr_splits() == 0 || profile.total_visits() > 0,
            "traffic must hit splits"
        );
        let hot = det.with_profiled_layout(&profile);
        hot.validate().unwrap();
        assert_eq!(hot.fingerprint(), det.fingerprint(), "same model, same id");
        assert!(hot.compiled().hot_prefix_bytes() <= hot.compiled().arena_bytes());
        let mut want = vec![Label::Correct; traffic.len()];
        let mut got = vec![Label::Correct; traffic.len()];
        det.classify_batch(&traffic, &mut want);
        hot.classify_batch(&traffic, &mut got);
        assert_eq!(want, got, "re-layout must not change verdicts");
        for f in &traffic {
            assert_eq!(hot.classify(f), det.classify(f));
        }
    }

    #[test]
    fn fingerprint_matches_json_hash() {
        // The cached fingerprint must equal FNV-1a over the wire JSON —
        // the contract the pre-cache implementation established.
        let det = toy_detector();
        assert_eq!(det.fingerprint(), super::fnv1a(det.to_json().as_bytes()));
        assert_eq!(det.fingerprint(), det.clone().fingerprint());
    }

    #[test]
    fn json_round_trip() {
        let det = toy_detector();
        let back = VmTransitionDetector::from_json(&det.to_json()).unwrap();
        let f = FeatureVec {
            vmer: 17,
            rt: 230,
            br: 25,
            rm: 9,
            wm: 6,
        };
        assert_eq!(back.classify(&f), det.classify(&f));
    }
}
