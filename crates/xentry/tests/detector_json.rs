//! Serialization contract of the deployed detector: `from_json` must
//! reject anything that is not a well-formed integer-threshold tree, and
//! `to_json ∘ from_json` must preserve classification everywhere.

use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};

fn trained_detector() -> VmTransitionDetector {
    let mut d = Dataset::new(&FEATURE_NAMES);
    for i in 0..200u64 {
        let vmer = 10 + i % 5;
        d.push(Sample::new(
            vec![vmer, 50 + i % 40, 6 + i % 4, 8, 4],
            Label::Correct,
        ));
        d.push(Sample::new(
            vec![vmer, 600 + i, 60 + i % 9, 90, 50],
            Label::Incorrect,
        ));
    }
    VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
}

#[test]
fn rejects_malformed_json() {
    for bad in [
        "",
        "{",
        "not json at all",
        "{\"tree\":",
        "[1,2",
        "{\"tree\" \"x\"}",
    ] {
        assert!(
            VmTransitionDetector::from_json(bad).is_err(),
            "malformed input accepted: {bad:?}"
        );
    }
}

#[test]
fn rejects_wrong_schema() {
    let cases = [
        // Valid JSON, wrong shape entirely.
        "42",
        "[]",
        "{}",
        "{\"detector\": {}}",
        // Right outer key, wrong inner shape.
        "{\"tree\": {\"feature_names\": [\"VMER\"]}}",
        "{\"tree\": {\"feature_names\": [\"VMER\"], \"root\": {\"Branch\": {}}}}",
        // Leaf with a label that is not a Label variant.
        "{\"tree\": {\"feature_names\": [\"VMER\",\"RT\",\"BR\",\"RM\",\"WM\"], \
          \"root\": {\"Leaf\": {\"label\": \"Maybe\", \"correct\": 1, \"incorrect\": 0}}}}",
        // Split missing its right child.
        "{\"tree\": {\"feature_names\": [\"VMER\",\"RT\",\"BR\",\"RM\",\"WM\"], \
          \"root\": {\"Split\": {\"feature\": 0, \"threshold\": 5, \
          \"left\": {\"Leaf\": {\"label\": \"Correct\", \"correct\": 1, \"incorrect\": 0}}}}}}",
    ];
    for bad in cases {
        assert!(
            VmTransitionDetector::from_json(bad).is_err(),
            "wrong schema accepted: {bad}"
        );
    }
}

#[test]
fn rejects_float_thresholds() {
    // The in-hypervisor classifier is integer-only by design (§III-B:
    // "a set of simple integer comparisons"); a model exported with
    // fractional thresholds must not deploy.
    let json = trained_detector().to_json();
    assert!(
        json.contains("\"threshold\":"),
        "fixture must contain thresholds: {json}"
    );
    let with_floats = json.replacen("\"threshold\":", "\"threshold\":0.5, \"ignored\":", 1);
    // Guard the rewrite actually produced a float where a u64 belongs.
    assert_ne!(json, with_floats);
    assert!(
        VmTransitionDetector::from_json(&with_floats).is_err(),
        "float threshold deployed: {with_floats}"
    );

    // Same for a fractional feature index.
    let with_float_feature = json.replacen("\"feature\":", "\"feature\":1.5, \"ignored\":", 1);
    assert_ne!(json, with_float_feature);
    assert!(VmTransitionDetector::from_json(&with_float_feature).is_err());
}

#[test]
fn round_trip_preserves_classification_on_feature_grid() {
    let det = trained_detector();
    let back = VmTransitionDetector::from_json(&det.to_json()).expect("round trip parses");
    assert_eq!(
        det.fingerprint(),
        back.fingerprint(),
        "canonical JSON must be stable"
    );

    // Sample the feature space on a grid that straddles every learned
    // threshold region: small/medium/large per counter, every VMER the
    // training set saw plus unseen ones.
    let grid = [0u64, 1, 40, 55, 100, 300, 600, 650, 1000, 10_000];
    let mut checked = 0u64;
    for vmer in [0u16, 10, 11, 12, 13, 14, 99] {
        for &rt in &grid {
            for &br in &[0u64, 6, 60, 500] {
                for &rm in &[0u64, 8, 90] {
                    for &wm in &[0u64, 4, 50] {
                        let f = FeatureVec {
                            vmer,
                            rt,
                            br,
                            rm,
                            wm,
                        };
                        assert_eq!(
                            det.classify(&f),
                            back.classify(&f),
                            "round-trip classification diverged at {f:?}"
                        );
                        assert_eq!(det.classify_cost(&f), back.classify_cost(&f));
                        checked += 1;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 7 * 10 * 4 * 3 * 3);
    // Both labels must occur on the grid or the test proves nothing.
    let labels: std::collections::HashSet<_> = (0..grid.len())
        .map(|i| {
            det.classify(&FeatureVec {
                vmer: 12,
                rt: grid[i],
                br: 6,
                rm: 8,
                wm: 4,
            })
        })
        .collect();
    assert_eq!(labels.len(), 2, "grid must straddle the decision boundary");
}

#[test]
fn deployed_artifact_from_results_dir_parses_if_present() {
    // The campaign pipeline's artifact must always deserialize with the
    // current schema (guards against silent format drift).
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/detector.json");
    if let Ok(json) = std::fs::read_to_string(path) {
        let det = VmTransitionDetector::from_json(&json).expect("shipped detector.json parses");
        assert!(det.nr_nodes() >= 1);
        // Canonical re-serialization round-trips.
        let back = VmTransitionDetector::from_json(&det.to_json()).unwrap();
        assert_eq!(det.fingerprint(), back.fingerprint());
    }
}
