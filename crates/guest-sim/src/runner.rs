//! Convenience constructors for fully-loaded workload platforms, and the
//! activation-rate measurement used by the Fig. 3 experiment.

use crate::emit::load_workload;
use crate::profile::{dom0_profile, profile, Benchmark};
use sim_machine::VirtMode;
use xen_like::{DomainSpec, IrqProfile, Monitor, NullMonitor, Platform, Topology};

/// Build a platform running `benchmark` in `nr_guests` DomU VMs (plus Dom0
/// with the control-plane workload), matching the paper's setups.
/// `kernel_scale > 1` shrinks guest compute for cheap fault-injection runs.
///
/// VCPUs are distributed round-robin over the physical CPUs, so passing
/// `nr_cpus = nr_guests + 1` pins every domain to its own CPU — the paper's
/// uncontended 8-logical-core configuration. DomU `d` then runs on CPU `d`.
pub fn workload_platform(
    benchmark: Benchmark,
    mode: VirtMode,
    nr_cpus: usize,
    nr_guests: usize,
    kernel_scale: u64,
    seed: u64,
) -> Platform {
    let topo = Topology {
        nr_cpus,
        domains: vec![DomainSpec { nr_vcpus: 1 }; nr_guests + 1],
        virt_mode: mode,
        seed,
        cycle_model: Default::default(),
    };
    let (mut plat, _img) = Platform::new(topo);
    let prof = profile(benchmark, mode).scaled(kernel_scale);
    load_workload(
        &mut plat.machine,
        0,
        &dom0_profile(mode).scaled(kernel_scale),
    );
    for d in 1..=nr_guests {
        load_workload(&mut plat.machine, d, &prof);
    }
    plat.irq = IrqProfile {
        tick_period: 2_130_000, // 1 kHz at the modeled 2.13 GHz
        dev_irq_period: prof.dev_irq_period,
    };
    plat
}

/// One sampled window of activation-rate measurement.
#[derive(Debug, Clone, Copy)]
pub struct RateSample {
    /// Activations per second of virtual time.
    pub rate_hz: f64,
    /// Activations observed in the window.
    pub activations: u64,
}

/// Measure per-window hypervisor activation frequency on `cpu`, the Fig. 3
/// methodology ("we measure the number of hypervisor activities every
/// second"). Windows are `window_secs` of virtual time.
pub fn measure_activation_rate(
    plat: &mut Platform,
    cpu: usize,
    windows: usize,
    window_secs: f64,
) -> Vec<RateSample> {
    let hz = plat.machine.config.cycle_model.hz as f64;
    let window_cycles = (window_secs * hz) as u64;
    let mut monitor = NullMonitor;
    if !plat.is_booted(cpu) {
        plat.boot(cpu, &mut monitor);
    }
    let mut out = Vec::with_capacity(windows);
    for _ in 0..windows {
        let start = plat.machine.cpu(cpu).cycles;
        let mut count = 0u64;
        while plat.machine.cpu(cpu).cycles - start < window_cycles {
            let act = plat.run_activation(cpu, &mut monitor);
            assert!(
                act.outcome.is_healthy(),
                "fault-free run died: {:?} on {:?}",
                act.outcome,
                act.reason
            );
            count += 1;
        }
        let elapsed = (plat.machine.cpu(cpu).cycles - start) as f64 / hz;
        out.push(RateSample {
            rate_hz: count as f64 / elapsed,
            activations: count,
        });
    }
    out
}

/// Simple summary statistics for a set of rate samples (box-plot inputs).
#[derive(Debug, Clone, Copy)]
pub struct RateStats {
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
}

/// Compute box-plot statistics.
pub fn rate_stats(samples: &[RateSample]) -> RateStats {
    assert!(!samples.is_empty());
    let mut rates: Vec<f64> = samples.iter().map(|s| s.rate_hz).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| {
        let idx = ((rates.len() - 1) as f64 * p).round() as usize;
        rates[idx]
    };
    RateStats {
        min: rates[0],
        p25: q(0.25),
        median: q(0.5),
        p75: q(0.75),
        max: rates[rates.len() - 1],
    }
}

/// Run a platform for `n` activations with a monitor (shared helper).
pub fn run_with_monitor<M: Monitor>(
    plat: &mut Platform,
    cpu: usize,
    n: usize,
    monitor: &mut M,
) -> Vec<xen_like::Activation> {
    if !plat.is_booted(cpu) {
        plat.boot(cpu, monitor);
    }
    plat.run(cpu, n, monitor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_rate_is_positive_and_stable() {
        let mut plat = workload_platform(Benchmark::Freqmine, VirtMode::Para, 2, 1, 4, 3);
        let samples = measure_activation_rate(&mut plat, 1, 3, 0.002);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.rate_hz > 1_000.0, "rate too low: {}", s.rate_hz);
            assert!(s.activations > 0);
        }
    }

    #[test]
    fn rate_stats_ordering_holds() {
        let samples: Vec<RateSample> = [5.0, 1.0, 3.0, 2.0, 4.0]
            .iter()
            .map(|&r| RateSample {
                rate_hz: r,
                activations: 1,
            })
            .collect();
        let st = rate_stats(&samples);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 5.0);
        assert_eq!(st.median, 3.0);
        assert!(st.p25 <= st.median && st.median <= st.p75);
    }

    #[test]
    fn pv_io_workloads_are_faster_than_cpu_bound() {
        // Relative ordering of Fig. 3 must hold even at small scale: the
        // hypercall-heavy workloads (freqmine, postmark) activate the
        // hypervisor far more often than CPU-bound bzip2.
        let rate = |b| {
            let mut plat = workload_platform(b, VirtMode::Para, 2, 1, 1, 9);
            let s = measure_activation_rate(&mut plat, 1, 2, 0.002);
            rate_stats(&s).median
        };
        let bzip = rate(Benchmark::Bzip2);
        for b in [Benchmark::Freqmine, Benchmark::Postmark] {
            let r = rate(b);
            assert!(
                r > 2.5 * bzip,
                "{} ({r:.0}/s) should dwarf bzip2 ({bzip:.0}/s)",
                b.name()
            );
        }
    }
}
