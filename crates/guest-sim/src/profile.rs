//! Workload profiles for the six paper benchmarks.
//!
//! The paper selects benchmarks "to exercise different functions of the
//! hypervisor, because the hypervisor is the software under test rather
//! than the benchmarks" (§V-A). Each profile therefore specifies, per
//! virtualization mode:
//!
//! * a compute kernel shape (ALU-bound, pointer-chasing, or mixed),
//! * the mean kernel length between exits (which sets the activation
//!   frequency of Fig. 3), and
//! * a weighted mix of exit-producing actions (which hypervisor functions
//!   get exercised).

use sim_machine::VirtMode;

/// The benchmarks of §V-A: SPEC2006 (mcf, bzip2), PARSEC (freqmine,
/// canneal, x264) and Postmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPEC2006 mcf — memory-bound pointer chasing.
    Mcf,
    /// SPEC2006 bzip2 — CPU-bound compression arithmetic.
    Bzip2,
    /// PARSEC freqmine — the paper's peak hypervisor-activation workload
    /// (~650K activations/s in PV mode).
    Freqmine,
    /// PARSEC canneal — CPU-bound with scattered reads.
    Canneal,
    /// PARSEC x264 — mixed compute and I/O.
    X264,
    /// Postmark — small-file I/O; the heaviest I/O exit mix.
    Postmark,
    /// Adversarial: interrupt storm — device/APIC traffic dense enough
    /// that asynchronous exits dominate the activation mix.
    IrqStorm,
    /// Adversarial: two-party event-channel ping-pong — notify/yield
    /// cycles with almost no compute between exits.
    EvtchnPingPong,
    /// Adversarial: hypercall-saturated mix — nearly every hypercall
    /// family at high weight with minimal kernels between calls.
    HypercallHeavy,
}

impl Benchmark {
    /// All six, in the paper's figure order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Mcf,
        Benchmark::Bzip2,
        Benchmark::Freqmine,
        Benchmark::Canneal,
        Benchmark::X264,
        Benchmark::Postmark,
    ];

    /// The adversarial stress workloads: not part of the paper's suite
    /// (and deliberately excluded from [`Benchmark::ALL`]), they push the
    /// exit-reason distribution to its corners so classifier coverage and
    /// recovery receipts are exercised far from the benign benchmark mix.
    pub const ADVERSARIAL: [Benchmark; 3] = [
        Benchmark::IrqStorm,
        Benchmark::EvtchnPingPong,
        Benchmark::HypercallHeavy,
    ];

    /// Display name (lowercase, as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mcf => "mcf",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Canneal => "canneal",
            Benchmark::X264 => "x264",
            Benchmark::Postmark => "postmark",
            Benchmark::IrqStorm => "irq-storm",
            Benchmark::EvtchnPingPong => "evtchn-pingpong",
            Benchmark::HypercallHeavy => "hypercall-heavy",
        }
    }

    /// Parse a benchmark name (paper suite or adversarial).
    pub fn from_name(s: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .chain(Benchmark::ADVERSARIAL)
            .find(|b| b.name() == s)
    }
}

/// Compute-kernel shape between exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Register arithmetic only (bzip2-like).
    Alu,
    /// Pointer chasing through a permutation table (mcf-like).
    PointerChase,
    /// Alternating arithmetic and strided loads (canneal/x264-like).
    Mixed,
}

/// An exit-producing guest action. In PV mode privileged instructions trap
/// via #GP; in HVM mode they exit directly — same guest code, different
/// hypervisor paths, exactly the paper's PV/HVM comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `xen_version` — the cheap keepalive hypercall.
    XenVersion,
    /// `event_channel_op` send on a load-dependent port.
    EvtchnSend,
    /// `console_io` write of a short buffer.
    ConsoleWrite,
    /// `grant_table_op` map/unmap.
    GrantOp,
    /// `mmu_update` batch.
    MmuUpdate,
    /// `memory_op` balloon.
    MemoryOp,
    /// `set_timer_op` with a future deadline.
    SetTimer,
    /// `multicall` batch.
    Multicall,
    /// `update_va_mapping` of a data-region word.
    UpdateVa,
    /// `sched_op` yield.
    SchedYield,
    /// `vcpu_op` is-up query.
    VcpuIsUp,
    /// CPUID (PV: #GP trap-and-emulate; HVM: direct exit).
    Cpuid,
    /// RDTSC (results recorded to the time-result area, not the checksum).
    Rdtsc,
    /// Port output (PV: #GP emulation; HVM: I/O exit).
    PortOut,
    /// Port input.
    PortIn,
    /// `sysctl` statistics query (dom0-flavoured).
    Sysctl,
    /// `mmuext_op` batch.
    MmuextOp,
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    pub benchmark: Benchmark,
    pub mode: VirtMode,
    pub kernel: Kernel,
    /// Mean kernel-loop iterations between exits (uniformly varied in
    /// [1, 2·mean) by the guest's NOISE instruction).
    pub iters_mean: u64,
    /// Weighted exit actions.
    pub actions: Vec<(Action, u32)>,
    /// Mean cycles between device interrupts (I/O completion traffic),
    /// 0 = none.
    pub dev_irq_period: u64,
    /// Program-phase behaviour, producing the window-to-window activation
    /// spread visible in the paper's Fig. 3 box plots: every `phase_len`
    /// bursts the guest re-rolls its phase; with probability `1/phase_duty`
    /// it enters a "hot" phase where kernel bursts shrink by
    /// `>> phase_shift` (exits per second rise accordingly).
    pub phase_len: u64,
    /// 1-in-N chance of the hot phase at each re-roll (0 disables phases).
    pub phase_duty: u64,
    /// Burst-length right-shift during hot phases.
    pub phase_shift: u8,
}

impl WorkloadProfile {
    /// Total action weight.
    pub fn total_weight(&self) -> u32 {
        self.actions.iter().map(|(_, w)| w).sum()
    }

    /// Scale the kernel length down by `factor` (campaign configurations
    /// shrink guest compute so fault-injection post-windows stay cheap; the
    /// handler-side behaviour — the thing under test — is unchanged).
    pub fn scaled(mut self, factor: u64) -> WorkloadProfile {
        self.iters_mean = (self.iters_mean / factor.max(1)).max(1);
        self
    }
}

/// Build the profile for a benchmark in a virtualization mode. Kernel
/// lengths are calibrated so PV activation frequencies land in the paper's
/// 5K–100K/s band (with freqmine reaching the ~650K/s peak) and HVM in the
/// 2K–10K/s band, under the default 2.13 GHz cycle model.
pub fn profile(benchmark: Benchmark, mode: VirtMode) -> WorkloadProfile {
    use Action::*;
    // (kernel, pv_iters, hvm_iters, pv actions, hvm actions, dev_irq)
    let (kernel, pv_iters, hvm_iters): (Kernel, u64, u64) = match benchmark {
        Benchmark::Mcf => (Kernel::PointerChase, 26_000, 85_000),
        Benchmark::Bzip2 => (Kernel::Alu, 48_000, 120_000),
        Benchmark::Freqmine => (Kernel::Mixed, 9_000, 70_000),
        Benchmark::Canneal => (Kernel::Mixed, 26_000, 80_000),
        Benchmark::X264 => (Kernel::Mixed, 9_000, 50_000),
        Benchmark::Postmark => (Kernel::Alu, 9_500, 120_000),
        Benchmark::IrqStorm => (Kernel::Alu, 8_000, 45_000),
        Benchmark::EvtchnPingPong => (Kernel::Alu, 6_000, 40_000),
        Benchmark::HypercallHeavy => (Kernel::Mixed, 5_500, 38_000),
    };
    let pv_actions: Vec<(Action, u32)> = match benchmark {
        Benchmark::Mcf => vec![
            (XenVersion, 10),
            (MmuUpdate, 25),
            (UpdateVa, 20),
            (MemoryOp, 15),
            (Cpuid, 8),
            (SetTimer, 8),
            (SchedYield, 6),
            (Rdtsc, 8),
        ],
        Benchmark::Bzip2 => vec![
            (XenVersion, 20),
            (Cpuid, 12),
            (Rdtsc, 12),
            (SetTimer, 16),
            (SchedYield, 10),
            (VcpuIsUp, 10),
            (EvtchnSend, 10),
            (MmuextOp, 10),
        ],
        Benchmark::Freqmine => vec![
            (EvtchnSend, 25),
            (GrantOp, 18),
            (ConsoleWrite, 12),
            (XenVersion, 15),
            (Multicall, 10),
            (SchedYield, 8),
            (Rdtsc, 6),
            (MmuUpdate, 6),
        ],
        Benchmark::Canneal => vec![
            (XenVersion, 18),
            (Cpuid, 14),
            (MemoryOp, 14),
            (MmuextOp, 12),
            (SetTimer, 12),
            (Rdtsc, 10),
            (EvtchnSend, 10),
            (Sysctl, 10),
        ],
        Benchmark::X264 => vec![
            (ConsoleWrite, 20),
            (GrantOp, 16),
            (EvtchnSend, 16),
            (Cpuid, 10),
            (Rdtsc, 10),
            (Multicall, 10),
            (UpdateVa, 10),
            (SchedYield, 8),
        ],
        Benchmark::Postmark => vec![
            (ConsoleWrite, 30),
            (GrantOp, 22),
            (EvtchnSend, 18),
            (MemoryOp, 10),
            (Multicall, 8),
            (XenVersion, 6),
            (SetTimer, 6),
        ],
        // Adversarial mixes: each one drives a corner of the exit-reason
        // space the benign suite only samples lightly.
        Benchmark::IrqStorm => vec![
            // Timer re-arms keep the APIC tick firing between the device
            // storm's completions; the synchronous mix stays thin.
            (SetTimer, 30),
            (EvtchnSend, 25),
            (SchedYield, 15),
            (XenVersion, 10),
            (VcpuIsUp, 10),
            (Rdtsc, 10),
        ],
        Benchmark::EvtchnPingPong => vec![
            // Notify-then-yield cycles: the event-channel and scheduler
            // paths run almost back-to-back.
            (EvtchnSend, 45),
            (SchedYield, 30),
            (XenVersion, 10),
            (VcpuIsUp, 8),
            (SetTimer, 7),
        ],
        Benchmark::HypercallHeavy => vec![
            // Nearly every hypercall family at weight, with the MMU batch
            // calls (dropped in HVM) well represented.
            (MmuUpdate, 12),
            (UpdateVa, 10),
            (MmuextOp, 10),
            (GrantOp, 10),
            (MemoryOp, 10),
            (Multicall, 10),
            (EvtchnSend, 8),
            (ConsoleWrite, 8),
            (SetTimer, 6),
            (Sysctl, 6),
            (VcpuIsUp, 5),
            (XenVersion, 5),
        ],
    };
    // HVM guests keep event channels and grants (PV-on-HVM drivers) but
    // reach devices through direct I/O exits instead of console hypercalls,
    // and privileged instructions exit directly.
    let hvm_actions: Vec<(Action, u32)> = pv_actions
        .iter()
        .map(|&(a, w)| match a {
            ConsoleWrite => (PortOut, w),
            MmuUpdate | UpdateVa | MmuextOp => (Cpuid, w), // no PV MMU calls in HVM
            SchedYield => (PortIn, w),
            other => (other, w),
        })
        .collect();
    let dev_irq_period = match benchmark {
        Benchmark::Postmark => 260_000, // heavy I/O completion traffic
        Benchmark::Freqmine => 420_000,
        Benchmark::X264 => 700_000,
        Benchmark::Mcf | Benchmark::Canneal => 2_600_000,
        Benchmark::Bzip2 => 3_400_000,
        Benchmark::IrqStorm => 60_000, // the storm itself
        Benchmark::EvtchnPingPong => 1_800_000,
        Benchmark::HypercallHeavy => 1_200_000,
    };
    // Phase behaviour: freqmine has pronounced hot mining phases (the
    // paper's 650K/s peak); the I/O workloads show moderate spread; the
    // CPU/memory workloads are steadier.
    let (phase_len, phase_duty, phase_shift) = match benchmark {
        Benchmark::Freqmine => (2_000, 2, 6),
        Benchmark::Postmark => (300, 4, 1),
        Benchmark::X264 => (300, 4, 1),
        Benchmark::Mcf | Benchmark::Canneal => (200, 6, 1),
        Benchmark::Bzip2 => (200, 8, 1),
        Benchmark::IrqStorm => (150, 3, 2),
        Benchmark::EvtchnPingPong => (150, 3, 1),
        Benchmark::HypercallHeavy => (250, 3, 2),
    };
    match mode {
        VirtMode::Para => WorkloadProfile {
            benchmark,
            mode,
            kernel,
            iters_mean: pv_iters,
            actions: pv_actions,
            dev_irq_period,
            phase_len,
            phase_duty,
            phase_shift,
        },
        VirtMode::Hvm => WorkloadProfile {
            benchmark,
            mode,
            kernel,
            iters_mean: hvm_iters,
            actions: hvm_actions,
            dev_irq_period,
            phase_len,
            phase_duty,
            phase_shift,
        },
    }
}

/// A light control-plane workload for Dom0: periodic toolstack queries and
/// console traffic.
pub fn dom0_profile(mode: VirtMode) -> WorkloadProfile {
    use Action::*;
    WorkloadProfile {
        benchmark: Benchmark::X264, // placeholder tag; dom0 has no benchmark
        mode,
        kernel: Kernel::Alu,
        iters_mean: 60_000,
        actions: vec![
            (Sysctl, 25),
            (ConsoleWrite, 20),
            (XenVersion, 20),
            (EvtchnSend, 15),
            (VcpuIsUp, 10),
            (SetTimer, 10),
        ],
        dev_irq_period: 0,
        phase_len: 0,
        phase_duty: 0,
        phase_shift: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_benchmark() -> impl Iterator<Item = Benchmark> {
        Benchmark::ALL.into_iter().chain(Benchmark::ADVERSARIAL)
    }

    #[test]
    fn all_profiles_have_actions_and_weight() {
        for b in every_benchmark() {
            for mode in [VirtMode::Para, VirtMode::Hvm] {
                let p = profile(b, mode);
                assert!(!p.actions.is_empty());
                assert!(p.total_weight() > 0);
                assert!(p.iters_mean > 0);
            }
        }
    }

    #[test]
    fn hvm_kernels_are_longer_than_pv() {
        // HVM activation rates (2K–10K/s) are far below PV's (5K–650K/s).
        for b in every_benchmark() {
            let pv = profile(b, VirtMode::Para);
            let hvm = profile(b, VirtMode::Hvm);
            assert!(
                hvm.iters_mean > pv.iters_mean,
                "{}: hvm {} <= pv {}",
                b.name(),
                hvm.iters_mean,
                pv.iters_mean
            );
        }
    }

    #[test]
    fn freqmine_has_the_most_aggressive_hot_phase() {
        // Freqmine's peak activation frequency (the paper's ~650K/s) comes
        // from its hot mining phases: the largest burst-shrink shift.
        let freq = profile(Benchmark::Freqmine, VirtMode::Para);
        for b in Benchmark::ALL {
            if b != Benchmark::Freqmine {
                assert!(profile(b, VirtMode::Para).phase_shift < freq.phase_shift);
            }
        }
        // Its steady-state kernel is also on the short side of the suite.
        assert!(freq.iters_mean <= profile(Benchmark::Mcf, VirtMode::Para).iters_mean);
    }

    #[test]
    fn hvm_drops_pv_mmu_interfaces() {
        for b in every_benchmark() {
            let p = profile(b, VirtMode::Hvm);
            for (a, _) in &p.actions {
                assert!(
                    !matches!(a, Action::MmuUpdate | Action::UpdateVa | Action::MmuextOp),
                    "{}: HVM profile uses PV MMU call {a:?}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for b in every_benchmark() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn adversarial_excluded_from_paper_suite() {
        // Figure-generating code iterates `ALL`; the stress workloads must
        // stay opt-in so the paper's six-benchmark figures are undisturbed.
        for b in Benchmark::ADVERSARIAL {
            assert!(!Benchmark::ALL.contains(&b), "{} leaked into ALL", b.name());
        }
    }

    #[test]
    fn adversarial_profiles_stress_their_corner() {
        // The storm's device-interrupt traffic is the densest in the suite.
        let storm = profile(Benchmark::IrqStorm, VirtMode::Para);
        for b in every_benchmark() {
            if b != Benchmark::IrqStorm {
                let p = profile(b, VirtMode::Para);
                assert!(
                    p.dev_irq_period == 0 || p.dev_irq_period > storm.dev_irq_period,
                    "{} out-storms irq-storm",
                    b.name()
                );
            }
        }
        // Ping-pong is dominated by notify/yield pairs.
        let pp = profile(Benchmark::EvtchnPingPong, VirtMode::Para);
        let pair: u32 = pp
            .actions
            .iter()
            .filter(|(a, _)| matches!(a, Action::EvtchnSend | Action::SchedYield))
            .map(|(_, w)| w)
            .sum();
        assert!(pair * 2 > pp.total_weight(), "ping-pong mix not dominant");
        // Hypercall-heavy has the widest synchronous mix and short kernels.
        let hh = profile(Benchmark::HypercallHeavy, VirtMode::Para);
        for b in Benchmark::ALL {
            let p = profile(b, VirtMode::Para);
            assert!(hh.actions.len() >= p.actions.len());
            assert!(hh.iters_mean <= p.iters_mean);
        }
    }

    #[test]
    fn scaled_reduces_kernel_only() {
        let p = profile(Benchmark::Mcf, VirtMode::Para);
        let s = p.clone().scaled(20);
        assert_eq!(s.iters_mean, p.iters_mean / 20);
        assert_eq!(s.actions.len(), p.actions.len());
    }
}
