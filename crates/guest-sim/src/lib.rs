//! # guest-sim — synthetic guest workload models
//!
//! The paper runs SPEC2006 (mcf, bzip2), PARSEC (freqmine, canneal, x264)
//! and Postmark inside guest VMs, chosen "to exercise different functions
//! of the hypervisor" (§V-A). This crate provides the substitution: six
//! workload models, each a real guest program (emitted through `sim-asm`)
//! whose hypervisor-activation profile — exit-reason mix and activation
//! frequency, in both para-virtualized and hardware-assisted modes —
//! reproduces the corresponding benchmark's footprint from Fig. 3.
//!
//! Guests compute a running checksum over kernel results *and* hypervisor
//! outputs (hypercall return values, emulated CPUID leaves), publishing it
//! to a known memory word. Corrupted hypervisor outputs therefore surface
//! as checksum mismatches — the observable behind the paper's "APP SDC"
//! outcome class. RDTSC outputs are kept in a separate time-result area
//! because replicated time reads legitimately differ (§VI).

pub mod emit;
pub mod profile;
pub mod runner;

pub use emit::{guest_addrs, load_workload, GuestAddrs};
pub use profile::{dom0_profile, profile, Action, Benchmark, Kernel, WorkloadProfile};
pub use runner::{
    measure_activation_rate, rate_stats, run_with_monitor, workload_platform, RateSample, RateStats,
};
