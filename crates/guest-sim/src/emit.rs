//! Guest program emission and loading.
//!
//! Every workload is a real guest program: a compute kernel folding results
//! into a checksum register, periodically performing one of the profile's
//! exit actions, with a trap handler that unwinds via the `iret` hypercall.
//! The checksum lands in a known guest-memory word, which is how the
//! fault-injection campaign distinguishes a silent data corruption (wrong
//! checksum, clean exit) from a crash — the paper's APP SDC vs APP crash
//! outcome split.

use crate::profile::{Action, Kernel, WorkloadProfile};
use sim_asm::Asm;
use sim_machine::{Machine, Reg::*};
use xen_like::layout as lay;

/// Word offsets inside a domain's data region.
pub mod guest_layout {
    /// Checksum result (SDC-sensitive: corrupted hypervisor outputs land
    /// here).
    pub const RESULT: u64 = 0;
    /// RDTSC outputs (low, high) — time values, tracked separately because
    /// the paper's Table II separates time-value corruption from data SDC.
    pub const TIME_RESULT: u64 = 8;
    /// Count of traps delivered to the guest.
    pub const TRAP_COUNT: u64 = 16;
    /// Completed kernel bursts.
    pub const ITER_COUNT: u64 = 17;
    /// Bursts since the last program-phase re-roll.
    pub const PHASE_COUNT: u64 = 18;
    /// 1 while in the hot (short-burst) phase.
    pub const PHASE_FLAG: u64 = 19;
    /// Completed phase periods (drives the deterministic duty cycle).
    pub const PHASE_IDX: u64 = 20;
    /// update_va_mapping target window (64 words).
    pub const SCRATCH: u64 = 0x100;
    /// Hypercall argument arrays (64 words of valid in-window pointers).
    pub const ARGS: u64 = 0x200;
    /// Pointer-chase table (1024 words forming one permutation cycle).
    pub const CHASE: u64 = 0x400;
    /// Chase table length in words.
    pub const CHASE_LEN: u64 = 1024;
}

/// Guest-memory addresses that the fault-injection campaign inspects.
#[derive(Debug, Clone, Copy)]
pub struct GuestAddrs {
    pub result: u64,
    pub time_result: u64,
    pub trap_count: u64,
    pub iter_count: u64,
}

/// Addresses of the observable words for domain `dom`.
pub fn guest_addrs(dom: usize) -> GuestAddrs {
    let d = lay::guest_data(dom);
    GuestAddrs {
        result: d + guest_layout::RESULT * 8,
        time_result: d + guest_layout::TIME_RESULT * 8,
        trap_count: d + guest_layout::TRAP_COUNT * 8,
        iter_count: d + guest_layout::ITER_COUNT * 8,
    }
}

/// Register allocation inside guest programs:
/// `r11` checksum, `r12` chase pointer, `r13` mixing constant,
/// `r14` chase mask (byte units), `r15` chase base.
fn emit_program(a: &mut Asm, dom: usize, p: &WorkloadProfile) {
    let data = lay::guest_data(dom);
    let result_addr = data + guest_layout::RESULT * 8;
    let time_addr = data + guest_layout::TIME_RESULT * 8;
    let trap_addr = data + guest_layout::TRAP_COUNT * 8;
    let iter_addr = data + guest_layout::ITER_COUNT * 8;
    let args_addr = data + guest_layout::ARGS * 8;
    let scratch_addr = data + guest_layout::SCRATCH * 8;
    let chase_addr = data + guest_layout::CHASE * 8;

    a.global("guest_entry");
    // Register the trap handler with the hypervisor.
    a.lea(Rdi, "trap_handler");
    a.lea(Rsi, "trap_handler");
    a.hypercall(4); // set_callbacks
                    // Initialize workload registers.
    a.movi(R11, 0x1234_5678);
    a.movi(R12, chase_addr as i64);
    a.movi(R13, 0x9E37_79B9);
    a.movi(R14, ((guest_layout::CHASE_LEN - 1) * 8) as i64);
    a.movi(R15, chase_addr as i64);

    a.label("main_loop");
    a.noise(Rcx, 2 * p.iters_mean);
    a.addi(Rcx, 1);
    if p.phase_duty > 0 && p.phase_shift > 0 {
        // Hot program phases shorten bursts (raising the exit rate) for
        // `phase_len` bursts at a time — the source of Fig. 3's
        // window-to-window spread.
        a.movi(R9, (data + guest_layout::PHASE_FLAG * 8) as i64);
        a.load(R8, R9, 0);
        a.cmpi(R8, 0);
        a.je("phase_cold");
        a.shr(Rcx, p.phase_shift);
        a.addi(Rcx, 1);
        a.label("phase_cold");
    }
    a.label("kernel_loop");
    match p.kernel {
        Kernel::Alu => {
            a.mul(R11, R13);
            a.mov(R8, R11);
            a.shr(R8, 13);
            a.xor(R11, R8);
            a.addi(R11, 1);
        }
        Kernel::PointerChase => {
            a.load(R12, R12, 0);
            a.add(R11, R12);
        }
        Kernel::Mixed => {
            a.mul(R11, R13);
            a.mov(R8, R11);
            a.and(R8, R14);
            a.add(R8, R15);
            a.load(R8, R8, 0);
            a.add(R11, R8);
        }
    }
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("kernel_loop");

    // Publish the checksum and the burst count.
    a.movi(R9, result_addr as i64);
    a.store(R9, 0, R11);
    a.movi(R9, iter_addr as i64);
    a.load(R8, R9, 0);
    a.addi(R8, 1);
    a.store(R9, 0, R8);

    if p.phase_duty > 0 && p.phase_shift > 0 {
        // Phase bookkeeping: every `phase_len` bursts, advance the phase
        // index; 1 in `phase_duty` phases is hot.
        a.movi(R9, (data + guest_layout::PHASE_COUNT * 8) as i64);
        a.load(R8, R9, 0);
        a.addi(R8, 1);
        a.cmpi(R8, p.phase_len as i64);
        a.jl("phase_keep");
        a.movi(R8, 0);
        a.movi(R9, (data + guest_layout::PHASE_IDX * 8) as i64);
        a.load(R10, R9, 0);
        a.addi(R10, 1);
        a.store(R9, 0, R10);
        a.mov(Rdx, R10);
        a.movi(Rcx, p.phase_duty as i64);
        a.rem(Rdx, Rcx);
        a.cmpi(Rdx, 0);
        a.je("phase_hot");
        a.movi(R10, 0);
        a.jmp("phase_set");
        a.label("phase_hot");
        a.movi(R10, 1);
        a.label("phase_set");
        a.movi(Rdx, (data + guest_layout::PHASE_FLAG * 8) as i64);
        a.store(Rdx, 0, R10);
        a.movi(R9, (data + guest_layout::PHASE_COUNT * 8) as i64);
        a.label("phase_keep");
        a.store(R9, 0, R8);
    }

    // Pick an exit action by cumulative weight.
    let total = p.total_weight() as u64;
    a.noise(Rax, total);
    let mut acc: i64 = 0;
    for (i, (_, w)) in p.actions.iter().enumerate() {
        acc += *w as i64;
        a.cmpi(Rax, acc);
        a.jl(format!("action_{i}"));
    }
    a.jmp("main_loop"); // unreachable fallback

    for (i, (action, _)) in p.actions.iter().enumerate() {
        a.label(format!("action_{i}"));
        emit_action(a, *action, args_addr, scratch_addr, time_addr);
        a.jmp("main_loop");
    }

    // Trap handler: count the trap, "kill the offending task" by skipping
    // the faulting instruction (advance the frame's saved RIP), then unwind
    // via the iret hypercall — the guest kernel survives, the application
    // result is gone (the paper's APP-crash observable).
    a.label("trap_handler");
    a.movi(R9, trap_addr as i64);
    a.load(R8, R9, 0);
    a.addi(R8, 1);
    a.store(R9, 0, R8);
    // "Restart the app": reinitialize the workload registers so a corrupted
    // pointer doesn't re-fault forever (a real kernel kills the task and
    // the next one starts fresh).
    a.movi(R11, 0x1234_5678);
    a.movi(R12, chase_addr as i64);
    a.movi(R13, 0x9E37_79B9);
    a.movi(R14, ((guest_layout::CHASE_LEN - 1) * 8) as i64);
    a.movi(R15, chase_addr as i64);
    a.load(R8, Rsp, 0);
    a.addi(R8, 8);
    a.store(Rsp, 0, R8);
    a.hypercall(23); // iret restores RIP/RFLAGS/RAX from the frame
                     // iret never returns here; if it does the guest loops safely.
    a.jmp("main_loop");
}

fn emit_action(a: &mut Asm, action: Action, args: u64, scratch: u64, time_addr: u64) {
    match action {
        Action::XenVersion => {
            a.hypercall(17);
            a.add(R11, Rax);
        }
        Action::EvtchnSend => {
            a.movi(Rdi, 0);
            a.noise(Rsi, lay::NR_EVTCHN as u64);
            a.hypercall(32);
            a.add(R11, Rax);
        }
        Action::ConsoleWrite => {
            a.movi(Rdi, 0);
            // Console writes are line-sized: 24..32 characters.
            a.noise(Rsi, 8);
            a.addi(Rsi, 24);
            a.movi(Rdx, args as i64);
            a.hypercall(18);
            a.add(R11, Rax);
        }
        Action::GrantOp => {
            a.noise(Rdi, 2);
            a.noise(Rsi, lay::NR_GRANTS as u64);
            a.movi(Rdx, 77);
            a.hypercall(20);
            a.add(R11, Rax);
        }
        Action::MmuUpdate => {
            a.movi(Rdi, args as i64);
            // Page-table update batches cluster near the batch limit.
            a.noise(Rsi, 8);
            a.addi(Rsi, 24);
            a.hypercall(1);
            a.add(R11, Rax);
        }
        Action::MemoryOp => {
            a.noise(Rdi, 2);
            // Balloon in page-cluster units: 48..64 pages.
            a.noise(Rsi, 16);
            a.addi(Rsi, 48);
            a.hypercall(12);
            a.add(R11, Rax);
        }
        Action::SetTimer => {
            a.noise(Rdi, 100_000);
            a.addi(Rdi, 100);
            a.hypercall(15);
        }
        Action::Multicall => {
            a.movi(Rdi, args as i64);
            // Batches of 6..8 sub-calls.
            a.noise(Rsi, 2);
            a.addi(Rsi, 6);
            a.hypercall(13);
            a.add(R11, Rax);
        }
        Action::UpdateVa => {
            a.noise(Rdi, 64);
            a.shl(Rdi, 3);
            a.addi(Rdi, scratch as i64);
            a.mov(Rsi, R11);
            a.hypercall(14);
            a.add(R11, Rax);
        }
        Action::SchedYield => {
            a.movi(Rdi, 0);
            a.hypercall(29);
        }
        Action::VcpuIsUp => {
            a.movi(Rdi, 2);
            a.movi(Rsi, 0);
            a.hypercall(24);
            a.add(R11, Rax);
        }
        Action::Cpuid => {
            a.noise(Rax, 16);
            a.cpuid();
            a.add(R11, Rax);
            a.xor(R11, Rbx);
            a.add(R11, Rcx);
            a.xor(R11, Rdx);
        }
        Action::Rdtsc => {
            a.rdtsc();
            // Time values go to their own area, NOT the checksum: replicated
            // reads of the TSC legitimately differ (paper §VI).
            a.movi(R9, time_addr as i64);
            a.store(R9, 0, Rax);
            a.store(R9, 8, Rdx);
        }
        Action::PortOut => {
            a.mov(Rax, R11);
            a.out(xen_like::handlers::hypercalls::CONSOLE_PORT, Rax);
        }
        Action::PortIn => {
            a.inp(Rax, xen_like::handlers::hypercalls::CONSOLE_PORT);
            a.add(R11, Rax);
        }
        Action::Sysctl => {
            a.movi(Rdi, 0);
            a.hypercall(35);
            a.add(R11, Rax);
        }
        Action::MmuextOp => {
            a.movi(Rdi, args as i64);
            a.noise(Rsi, 4);
            a.addi(Rsi, 12);
            a.hypercall(26);
            a.add(R11, Rax);
        }
    }
}

/// Load `profile`'s program and data into domain `dom`.
pub fn load_workload(m: &mut Machine, dom: usize, profile: &WorkloadProfile) {
    let base = lay::guest_text(dom);
    let mut a = Asm::new(base);
    emit_program(&mut a, dom, profile);
    let img = a.assemble().expect("guest program assembles");
    assert!(
        img.len() <= lay::GUEST_TEXT_WORDS,
        "guest program too large: {}",
        img.len()
    );
    m.mem
        .load_image(base, &img.words)
        .expect("guest text mapped");

    let data = lay::guest_data(dom);
    // Argument area: valid in-window pointers (used by mmu_update /
    // multicall / set_trap_table-style batch calls).
    for i in 0..64u64 {
        let target = data + (guest_layout::SCRATCH + (i % 64)) * 8;
        m.mem
            .poke(data + (guest_layout::ARGS + i) * 8, target)
            .expect("args area mapped");
    }
    // Pointer-chase table: one full permutation cycle (stride 521 is odd,
    // hence coprime with the power-of-two length).
    let chase = data + guest_layout::CHASE * 8;
    for i in 0..guest_layout::CHASE_LEN {
        let next = (i + 521) % guest_layout::CHASE_LEN;
        m.mem
            .poke(chase + i * 8, chase + next * 8)
            .expect("chase table mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile, Benchmark};
    use sim_machine::VirtMode;
    use xen_like::{DomainSpec, Platform, Topology};

    #[test]
    fn every_profile_assembles_within_text_budget() {
        for b in Benchmark::ALL {
            for mode in [VirtMode::Para, VirtMode::Hvm] {
                let p = profile(b, mode);
                let mut a = Asm::new(lay::guest_text(1));
                emit_program(&mut a, 1, &p);
                let img = a
                    .assemble()
                    .unwrap_or_else(|e| panic!("{b:?}/{mode:?}: {e}"));
                assert!(img.len() <= lay::GUEST_TEXT_WORDS);
                assert!(img.symbol("trap_handler").is_some());
            }
        }
    }

    #[test]
    fn workload_runs_healthy_activations() {
        let topo = Topology {
            nr_cpus: 1,
            domains: vec![DomainSpec { nr_vcpus: 1 }, DomainSpec { nr_vcpus: 1 }],
            virt_mode: VirtMode::Para,
            seed: 5,
            cycle_model: Default::default(),
        };
        let (mut plat, _) = Platform::new(topo);
        let prof = profile(Benchmark::Postmark, VirtMode::Para).scaled(10);
        load_workload(
            &mut plat.machine,
            0,
            &crate::profile::dom0_profile(VirtMode::Para),
        );
        load_workload(&mut plat.machine, 1, &prof);
        plat.boot(0, &mut xen_like::NullMonitor);
        let acts = plat.run(0, 400, &mut xen_like::NullMonitor);
        assert_eq!(acts.len(), 400, "died: {:?}", acts.last().unwrap().outcome);
        // The guest made progress: bursts were counted and a checksum was
        // published.
        let ga = guest_addrs(1);
        assert!(
            plat.machine.mem.peek(ga.iter_count).unwrap() > 0,
            "no bursts completed"
        );
        assert_ne!(
            plat.machine.mem.peek(ga.result).unwrap(),
            0,
            "no checksum published"
        );
    }

    #[test]
    fn checksum_is_deterministic_for_same_seed() {
        let run = || {
            let topo = Topology {
                nr_cpus: 1,
                domains: vec![DomainSpec { nr_vcpus: 1 }],
                virt_mode: VirtMode::Para,
                seed: 11,
                cycle_model: Default::default(),
            };
            let (mut plat, _) = Platform::new(topo);
            let prof = profile(Benchmark::Freqmine, VirtMode::Para).scaled(4);
            load_workload(&mut plat.machine, 0, &prof);
            plat.boot(0, &mut xen_like::NullMonitor);
            plat.run(0, 300, &mut xen_like::NullMonitor);
            plat.machine.mem.peek(guest_addrs(0).result).unwrap()
        };
        assert_eq!(run(), run());
    }
}
