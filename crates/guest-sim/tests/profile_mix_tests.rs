//! Profile fidelity: each workload model must actually produce the exit
//! mix its profile declares, because that mix is the hypervisor-function
//! coverage the paper chose the benchmarks for.

use guest_sim::{load_workload, profile, Action, Benchmark};
use sim_machine::{ExitReason, Vector, VirtMode};
use std::collections::HashMap;
use xen_like::{DomainSpec, IrqProfile, NullMonitor, Platform, Topology};

fn run_mix(b: Benchmark, mode: VirtMode, n: usize) -> HashMap<u16, usize> {
    let topo = Topology {
        nr_cpus: 2,
        domains: vec![DomainSpec { nr_vcpus: 1 }; 2],
        virt_mode: mode,
        seed: 7,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let prof = profile(b, mode).scaled(16);
    load_workload(
        &mut plat.machine,
        0,
        &guest_sim::dom0_profile(mode).scaled(16),
    );
    load_workload(&mut plat.machine, 1, &prof);
    plat.irq = IrqProfile {
        tick_period: 2_130_000,
        dev_irq_period: prof.dev_irq_period,
    };
    plat.boot(1, &mut NullMonitor);
    let mut mix = HashMap::new();
    for _ in 0..n {
        let act = plat.run_activation(1, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "died: {:?}", act.outcome);
        *mix.entry(act.reason.vmer()).or_default() += 1;
    }
    mix
}

/// The actions a profile declares must appear in the observed exits.
#[test]
fn declared_actions_materialize_as_exits() {
    for b in [Benchmark::Freqmine, Benchmark::Postmark, Benchmark::Mcf] {
        let prof = profile(b, VirtMode::Para);
        let mix = run_mix(b, VirtMode::Para, 1500);
        for (action, weight) in &prof.actions {
            // Map the action to its expected exit code(s).
            let vmer = match action {
                Action::XenVersion => ExitReason::Hypercall(17).vmer(),
                Action::EvtchnSend => ExitReason::Hypercall(32).vmer(),
                Action::ConsoleWrite => ExitReason::Hypercall(18).vmer(),
                Action::GrantOp => ExitReason::Hypercall(20).vmer(),
                Action::MmuUpdate => ExitReason::Hypercall(1).vmer(),
                Action::MemoryOp => ExitReason::Hypercall(12).vmer(),
                Action::SetTimer => ExitReason::Hypercall(15).vmer(),
                Action::Multicall => ExitReason::Hypercall(13).vmer(),
                Action::UpdateVa => ExitReason::Hypercall(14).vmer(),
                Action::SchedYield => ExitReason::Hypercall(29).vmer(),
                Action::VcpuIsUp => ExitReason::Hypercall(24).vmer(),
                Action::Sysctl => ExitReason::Hypercall(35).vmer(),
                Action::MmuextOp => ExitReason::Hypercall(26).vmer(),
                // Privileged instructions trap via #GP in PV mode.
                Action::Cpuid | Action::Rdtsc | Action::PortOut | Action::PortIn => {
                    ExitReason::Exception(Vector::GeneralProtection).vmer()
                }
            };
            if *weight >= 10 {
                assert!(
                    mix.get(&vmer).copied().unwrap_or(0) > 0,
                    "{}: declared action {action:?} (weight {weight}) never exited (vmer {vmer}); mix: {mix:?}",
                    b.name()
                );
            }
        }
    }
}

/// Postmark must be console-dominated; bzip2 must not touch the console.
#[test]
fn io_mix_separates_postmark_from_bzip2() {
    let console = ExitReason::Hypercall(18).vmer();
    let post = run_mix(Benchmark::Postmark, VirtMode::Para, 1200);
    let bzip = run_mix(Benchmark::Bzip2, VirtMode::Para, 300);
    let post_console = post.get(&console).copied().unwrap_or(0);
    let bzip_console = bzip.get(&console).copied().unwrap_or(0);
    assert!(post_console > 100, "postmark console exits: {post_console}");
    assert_eq!(bzip_console, 0, "bzip2 must not write the console");
}

/// HVM profiles exit via direct CPUID/IO exits, not #GP traps.
#[test]
fn hvm_uses_direct_exits() {
    let mix = run_mix(Benchmark::Postmark, VirtMode::Hvm, 600);
    let gp = ExitReason::Exception(Vector::GeneralProtection).vmer();
    let io_w = ExitReason::IoInstruction {
        port: 0,
        write: true,
    }
    .vmer();
    let cpuid = ExitReason::CpuidExit.vmer();
    assert_eq!(
        mix.get(&gp).copied().unwrap_or(0),
        0,
        "no #GP trap-and-emulate in HVM"
    );
    let direct = mix.get(&io_w).copied().unwrap_or(0) + mix.get(&cpuid).copied().unwrap_or(0);
    assert!(direct > 0, "HVM direct exits missing: {mix:?}");
}

/// Device interrupts arrive at the configured rate for I/O workloads.
#[test]
fn device_interrupts_flow_for_io_workloads() {
    let mix = run_mix(Benchmark::Postmark, VirtMode::Para, 1500);
    let dev_total: usize = (0..16u8)
        .map(|i| {
            mix.get(&ExitReason::DeviceInterrupt(i).vmer())
                .copied()
                .unwrap_or(0)
        })
        .sum();
    assert!(
        dev_total > 3,
        "postmark should see device IRQs: {dev_total}"
    );
}
