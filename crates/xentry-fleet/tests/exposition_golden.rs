//! Golden test for the Prometheus text exposition: the format is a wire
//! contract with external scrapers, so its exact shape — series order,
//! label escaping, histogram `_bucket`/`_sum`/`_count` structure — is
//! pinned here. A diff in this test means a scraper-visible format
//! change; update the golden only deliberately.

use xentry_fleet::{
    parse_exposition, render_prometheus, EpochVerdicts, Histogram, ServiceSnapshot, ShardSnapshot,
};

/// A fully deterministic snapshot exercising every series the exposition
/// emits: two shards, two epochs, both histograms populated.
fn fixture() -> ServiceSnapshot {
    let queue = Histogram::default();
    queue.record(5);
    queue.record(5000);
    let classify = Histogram::default();
    classify.record(120);
    classify.record(130);
    classify.record(90_000);
    ServiceSnapshot {
        uptime_ns: 2_000_000_000,
        model_version: 3,
        model_fingerprint: 0xabcd_1234_5678_9e0f,
        model_arena_bytes: 65536,
        model_nr_splits: 2048,
        model_hot_prefix_bytes: 12288,
        ingested: 1000,
        classified: 990,
        dropped: 7,
        lost: 3,
        incorrect: 11,
        incidents: 9,
        suppressed_incidents: 2,
        swaps: 2,
        swap_rejections: 1,
        rollbacks: 1,
        restarts: 4,
        stalls: 1,
        degraded: true,
        degraded_entries: 1,
        degraded_verdicts: 40,
        throughput_per_sec: 495.0,
        trace_events: 3100,
        trace_dropped: 60,
        queue_latency: queue.snapshot(),
        classify_latency: classify.snapshot(),
        epoch_verdicts: vec![
            EpochVerdicts {
                epoch: 1,
                verdicts: 700,
            },
            EpochVerdicts {
                epoch: 3,
                verdicts: 290,
            },
        ],
        shards: vec![
            ShardSnapshot {
                shard: 0,
                classified: 500,
                incorrect: 6,
                dropped: 3,
                batches: 40,
                lost: 2,
                restarts: 3,
            },
            ShardSnapshot {
                shard: 1,
                classified: 490,
                incorrect: 5,
                dropped: 4,
                batches: 39,
                lost: 1,
                restarts: 1,
            },
        ],
    }
}

const GOLDEN: &str = include_str!("exposition_golden.txt");

#[test]
fn exposition_matches_golden_byte_for_byte() {
    let rendered = render_prometheus(&fixture());
    if rendered != GOLDEN {
        // Print a usable diff location instead of two multi-KB strings.
        for (i, (a, b)) in rendered.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(a, b, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            GOLDEN.lines().count(),
            "same lines but different line count"
        );
        panic!("rendered exposition differs from golden");
    }
}

#[test]
fn histogram_series_keep_prometheus_invariants() {
    let rendered = render_prometheus(&fixture());
    let samples = parse_exposition(&rendered).expect("golden exposition parses");
    for hist in [
        "xentry_fleet_queue_latency_ns",
        "xentry_fleet_classify_latency_ns",
    ] {
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|(n, _, _)| n == &format!("{hist}_bucket"))
            .map(|(_, labels, v)| {
                let le = &labels.iter().find(|(k, _)| k == "le").expect("le label").1;
                let edge = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("numeric le")
                };
                (edge, *v)
            })
            .collect();
        assert!(buckets.len() >= 2, "{hist}: need buckets plus +Inf");
        // Edges strictly increase and cumulative counts never decrease.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "{hist}: le edges must increase");
            assert!(w[0].1 <= w[1].1, "{hist}: cumulative counts decreased");
        }
        let last = buckets.last().unwrap();
        assert!(last.0.is_infinite(), "{hist}: final bucket must be +Inf");
        let count = samples
            .iter()
            .find(|(n, _, _)| n == &format!("{hist}_count"))
            .map(|(_, _, v)| *v)
            .expect("count series");
        let sum = samples
            .iter()
            .find(|(n, _, _)| n == &format!("{hist}_sum"))
            .map(|(_, _, v)| *v)
            .expect("sum series");
        assert_eq!(last.1, count, "{hist}: +Inf bucket equals _count");
        assert!(sum >= 0.0);
    }
}

#[test]
fn every_sample_parses_and_labels_round_trip() {
    let rendered = render_prometheus(&fixture());
    let samples = parse_exposition(&rendered).expect("parses");
    assert!(samples.len() > 30, "got {}", samples.len());
    // The model_info series carries identity in labels.
    let info = samples
        .iter()
        .find(|(n, _, _)| n == "xentry_fleet_model_info")
        .expect("model_info series");
    assert_eq!(info.2, 1.0);
    assert!(info.1.contains(&("version".to_string(), "3".to_string())));
    // Per-shard series carry the shard label verbatim.
    let shard1: Vec<_> = samples
        .iter()
        .filter(|(n, labels, _)| {
            n == "xentry_fleet_shard_classified_total"
                && labels.contains(&("shard".to_string(), "1".to_string()))
        })
        .collect();
    assert_eq!(shard1.len(), 1);
    assert_eq!(shard1[0].2, 490.0);
    // Per-epoch series likewise.
    let epoch3: Vec<_> = samples
        .iter()
        .filter(|(n, labels, _)| {
            n == "xentry_fleet_epoch_verdicts_total"
                && labels.contains(&("epoch".to_string(), "3".to_string()))
        })
        .collect();
    assert_eq!(epoch3.len(), 1);
    assert_eq!(epoch3[0].2, 290.0);
}
