//! Shard supervision: panic isolation, capped-backoff restart, stall
//! watchdog, and the escalation ladder into rollback and degraded mode.
//!
//! Xentry's premise is that the detection layer must survive the faults
//! it detects; ReHype (PAPERS.md) makes the matching recovery argument —
//! detection is only useful when the failed component can be
//! *microrebooted*. This module is that idea applied to the fleet's own
//! serving layer. Each shard worker runs inside `catch_unwind` under a
//! supervisor loop on its own thread:
//!
//! ```text
//!   worker panic ──► account lost in-flight records
//!                ──► restart with capped exponential backoff
//!                ──► consecutive panics ≥ rollback_after?
//!                        └─► auto-rollback the model (once per epoch:
//!                            a bad deploy is the likeliest new poison)
//!                ──► consecutive panics ≥ degrade_after?
//!                        └─► enter degraded mode (envelope verdicts,
//!                            tagged, instead of silent record loss)
//!
//!   heartbeat stale ──► watchdog bumps the shard generation (the stuck
//!                       worker is *superseded*: whenever it wakes it
//!                       sees the moved generation and exits) and spawns
//!                       a replacement on the same MPMC queue
//! ```
//!
//! Supervision is accounting-exact: a panicking worker abandons the
//! records it had claimed from its queue mid-batch, and the supervisor
//! adds exactly that in-flight count to the `lost` counters, preserving
//! `ingested == classified + lost` across any number of crashes. A
//! superseded (stalled-then-woken) worker instead *finishes* its
//! in-flight batch before exiting — its records were invisible to the
//! replacement, so nothing is lost and nothing classifies twice.

use crate::service::Shared;
use crate::trace::SpanKind;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a worker body returned (instead of panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// Stop flag observed with an empty queue: clean shutdown.
    Stopped,
    /// The shard generation moved: a replacement owns the queue now.
    Superseded,
}

/// Per-shard supervision state.
pub(crate) struct ShardSupervision {
    /// Generation counter; the watchdog bumps it to supersede a stalled
    /// worker. Workers capture it at start and re-check every loop.
    pub(crate) gen: AtomicU64,
    /// Last liveness beat, in service `now_ns` time. Workers store it
    /// every loop iteration (busy or idle).
    pub(crate) heartbeat_ns: AtomicU64,
    /// Panics since the last successfully completed batch.
    pub(crate) consecutive_panics: AtomicU32,
}

/// Service-wide supervision state.
pub(crate) struct Supervision {
    pub(crate) shards: Vec<ShardSupervision>,
    /// Degraded (envelope-fallback) mode flag, read by every worker once
    /// per batch.
    pub(crate) degraded: AtomicBool,
    /// Highest model epoch for which a supervisor-initiated rollback has
    /// run — at most one automatic rollback per deployed epoch, so a
    /// panic storm cannot ping-pong the slot.
    pub(crate) rolled_back_epoch: AtomicU64,
}

impl Supervision {
    pub(crate) fn new(nr_shards: usize) -> Supervision {
        Supervision {
            shards: (0..nr_shards)
                .map(|_| ShardSupervision {
                    gen: AtomicU64::new(0),
                    heartbeat_ns: AtomicU64::new(0),
                    consecutive_panics: AtomicU32::new(0),
                })
                .collect(),
            degraded: AtomicBool::new(false),
            rolled_back_epoch: AtomicU64::new(1),
        }
    }
}

/// Supervisor loop for one shard: run the worker, survive its panics.
/// This is the thread body `FleetService::start` (and the watchdog, for
/// replacements) spawns.
pub(crate) fn run_supervised(shared: Arc<Shared>, shard: usize) {
    // In-flight claim count, owned by THIS worker instance (a stalled
    // predecessor or replacement has its own), so panic accounting never
    // mixes two workers' batches.
    let inflight = AtomicU64::new(0);
    loop {
        let my_gen = shared.supervision.shards[shard].gen.load(Ordering::Acquire);
        let exit = catch_unwind(AssertUnwindSafe(|| {
            crate::shard::run_worker(&shared, shard, my_gen, &inflight)
        }));
        match exit {
            Ok(WorkerExit::Stopped) | Ok(WorkerExit::Superseded) => return,
            Err(_) => {
                let consecutive = on_worker_panic(&shared, shard, &inflight);
                backoff(&shared, shard, consecutive);
            }
        }
    }
}

/// Account a worker panic and walk the escalation ladder. Returns the
/// consecutive-panic count for backoff sizing.
fn on_worker_panic(shared: &Arc<Shared>, shard: usize, inflight: &AtomicU64) -> u32 {
    let m = &shared.metrics;
    // The records this worker claimed but never finished are gone with
    // its stack; account them so nothing vanishes silently.
    let lost = inflight.swap(0, Ordering::Relaxed);
    if lost > 0 {
        m.shards[shard].lost.fetch_add(lost, Ordering::Relaxed);
    }
    m.restarts.fetch_add(1, Ordering::Relaxed);
    m.shards[shard].restarts.fetch_add(1, Ordering::Relaxed);
    shared
        .tracer
        .record_control(SpanKind::Restart, shared.now_ns(), shard as u64);
    let sup = &shared.supervision;
    let consecutive = sup.shards[shard]
        .consecutive_panics
        .fetch_add(1, Ordering::Relaxed)
        + 1;

    // Escalation 1: repeated panics right after a model deploy point at
    // the deploy. Roll back to the previous epoch — once per epoch.
    let cfg = &shared.cfg;
    if cfg.rollback_after > 0 && consecutive >= cfg.rollback_after {
        let epoch = shared.model.epoch();
        // fetch_max both claims the epoch (only one shard's supervisor
        // wins) and records the rollback's own new epoch afterwards.
        if sup.rolled_back_epoch.fetch_max(epoch, Ordering::AcqRel) < epoch {
            if let Some(v) = shared.model.rollback() {
                sup.rolled_back_epoch.fetch_max(v, Ordering::AcqRel);
                m.rollbacks.fetch_add(1, Ordering::Relaxed);
                shared.refresh_golden_from_current();
                shared
                    .tracer
                    .record_control(SpanKind::Rollback, shared.now_ns(), v);
            }
        }
    }

    // Escalation 2: still panicking — stop feeding work through the
    // model path at all. Degraded mode classifies with the workers'
    // self-trained runtime envelopes and tags every verdict, instead of
    // burning records batch by batch.
    if cfg.degrade_after > 0
        && consecutive >= cfg.degrade_after
        && !sup.degraded.swap(true, Ordering::AcqRel)
    {
        m.degraded_entries.fetch_add(1, Ordering::Relaxed);
        shared
            .tracer
            .record_control(SpanKind::Degrade, shared.now_ns(), consecutive as u64);
    }
    consecutive
}

/// Capped exponential backoff between restarts, sliced so the heartbeat
/// stays fresh (a restarting shard is not a stalled shard) and so the
/// stop flag still drains promptly.
fn backoff(shared: &Arc<Shared>, shard: usize, consecutive: u32) {
    let cfg = &shared.cfg;
    let base = cfg.restart_backoff_ms.max(1);
    let exp = consecutive.saturating_sub(1).min(16);
    let mut remaining_ms = (base << exp).min(cfg.restart_backoff_cap_ms.max(base));
    let hb = &shared.supervision.shards[shard].heartbeat_ns;
    while remaining_ms > 0 {
        if shared.stop.load(Ordering::Acquire) {
            return; // shutdown wants the queue drained, not slept on
        }
        let slice = remaining_ms.min(10);
        std::thread::sleep(Duration::from_millis(slice));
        hb.store(shared.now_ns(), Ordering::Relaxed);
        remaining_ms -= slice;
    }
}

/// Heartbeat watchdog: detects shards whose worker stopped beating —
/// stuck in a hung sink, an injected stall, a pathological loop — and
/// replaces them. The stuck thread cannot be killed; it is *superseded*:
/// its shard generation moves, a fresh worker takes over the (MPMC)
/// queue, and whenever the old thread wakes it finishes its in-flight
/// batch, notices the moved generation, and exits.
pub(crate) fn run_watchdog(shared: Arc<Shared>) {
    let timeout_ms = shared.cfg.stall_timeout_ms;
    if timeout_ms == 0 {
        return; // watchdog disabled
    }
    let timeout_ns = timeout_ms.saturating_mul(1_000_000);
    let mut replacements: Vec<JoinHandle<()>> = Vec::new();
    // Workers may not have beaten yet; seed every heartbeat with "now".
    let now = shared.now_ns();
    for s in &shared.supervision.shards {
        s.heartbeat_ns.store(now, Ordering::Relaxed);
    }
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(timeout_ms.clamp(5, 40)));
        let now = shared.now_ns();
        for shard in 0..shared.cfg.shards {
            let sup = &shared.supervision.shards[shard];
            let hb = sup.heartbeat_ns.load(Ordering::Relaxed);
            if now.saturating_sub(hb) <= timeout_ns {
                continue;
            }
            // Stalled: supersede and replace.
            sup.gen.fetch_add(1, Ordering::AcqRel);
            sup.heartbeat_ns.store(now, Ordering::Relaxed);
            shared.metrics.stalls.fetch_add(1, Ordering::Relaxed);
            shared.metrics.restarts.fetch_add(1, Ordering::Relaxed);
            shared.metrics.shards[shard]
                .restarts
                .fetch_add(1, Ordering::Relaxed);
            shared
                .tracer
                .record_control(SpanKind::Stall, now, shard as u64);
            let shared2 = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("fleet-shard-{shard}-r"))
                .spawn(move || run_supervised(shared2, shard))
                .expect("spawn replacement worker");
            replacements.push(handle);
        }
    }
    for h in replacements {
        let _ = h.join();
    }
}
