//! Load-replay driver: feed campaign-style activation traces into a
//! running [`FleetService`] from `K` simulated hosts
//! at a configurable rate.
//!
//! Trace sources:
//! * [`workload_trace`] — run the real xen-like platform under an Xentry
//!   collector shim and take the per-activation feature vectors;
//! * [`synthetic_trace`] — a statistical model of the same features
//!   (per-VMER base costs plus rare inflated anomalies), cheap enough to
//!   generate millions of records for throughput work.

use crate::record::TelemetryRecord;
use crate::service::FleetService;
use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use xentry::{FeatureVec, VmTransitionDetector, Xentry, FEATURE_NAMES};

/// Replay shape.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Simulated platform instances, each on its own sender thread.
    pub hosts: usize,
    /// Records each host sends.
    pub records_per_host: usize,
    /// Per-host offered rate in records/second; 0 means unthrottled.
    pub rate_per_host: f64,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            hosts: 8,
            records_per_host: 100_000,
            rate_per_host: 0.0,
        }
    }
}

/// What the driver observed (service-side numbers live in the snapshot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    pub hosts: usize,
    pub sent: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub wall_ns: u64,
    /// Aggregate offered rate actually achieved, records/second.
    pub offered_per_sec: f64,
}

/// Replay `trace` into `service` from `cfg.hosts` concurrent senders.
/// Each host walks the trace at its own offset so the fleet does not
/// phase-lock, wrapping as needed to reach `records_per_host`.
pub fn replay(service: &FleetService, trace: &[FeatureVec], cfg: &ReplayConfig) -> ReplayReport {
    assert!(!trace.is_empty(), "replay needs a non-empty trace");
    assert!(cfg.hosts >= 1, "replay needs at least one host");
    let t0 = Instant::now();
    let per_host: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.hosts)
            .map(|h| {
                s.spawn(move || {
                    let offset = h * 7919; // co-prime stride de-phases hosts
                    let start = Instant::now();
                    let mut accepted = 0u64;
                    let mut rejected = 0u64;
                    for i in 0..cfg.records_per_host {
                        if cfg.rate_per_host > 0.0 {
                            let due_ns = (i as f64 / cfg.rate_per_host * 1e9) as u64;
                            while (start.elapsed().as_nanos() as u64) < due_ns {
                                std::hint::spin_loop();
                            }
                        }
                        let f = trace[(offset + i) % trace.len()];
                        let rec = TelemetryRecord::new(h as u32, (i % 4) as u32, i as u64, f);
                        if service.ingest_record(rec) {
                            accepted += 1;
                        } else {
                            rejected += 1;
                        }
                    }
                    (accepted, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay host panicked"))
            .collect()
    });
    let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let accepted: u64 = per_host.iter().map(|(a, _)| a).sum();
    let rejected: u64 = per_host.iter().map(|(_, r)| r).sum();
    let sent = accepted + rejected;
    ReplayReport {
        hosts: cfg.hosts,
        sent,
        accepted,
        rejected,
        wall_ns,
        offered_per_sec: sent as f64 * 1e9 / wall_ns as f64,
    }
}

/// Collect `n` real activation feature vectors by running the simulated
/// platform under a collector shim (one guest, paper-style workload).
pub fn workload_trace(benchmark: guest_sim::Benchmark, n: usize, seed: u64) -> Vec<FeatureVec> {
    let mut plat =
        guest_sim::workload_platform(benchmark, sim_machine::VirtMode::Para, 2, 1, 8, seed);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    while shim.trace.len() < n {
        let act = plat.run_activation(1, &mut shim);
        assert!(act.outcome.is_healthy(), "fault-free trace collection died");
    }
    shim.trace.truncate(n);
    shim.trace
}

/// Per-VMER statistical model used by the synthetic generator and its
/// matching training set. `(vmer, base_rt, base_br, base_rm, base_wm)`.
const VMER_PROFILES: [(u16, u64, u64, u64, u64); 4] = [
    (17, 60, 6, 8, 4),        // xen_version-style short hypercall
    (32, 400, 45, 90, 60),    // event_channel_op-style
    (40, 900, 110, 220, 150), // sched_op / context switch heavy
    (8, 200, 20, 40, 25),     // page-fault-ish exit
];

fn profile_features(rng: &mut ChaCha8Rng, anomalous: bool) -> FeatureVec {
    let (vmer, rt, br, rm, wm) = VMER_PROFILES[rng.gen_range(0..VMER_PROFILES.len())];
    let jitter = |rng: &mut ChaCha8Rng, base: u64| base + rng.gen_range(0..base.max(2) / 2);
    let scale = if anomalous { 10 } else { 1 };
    FeatureVec {
        vmer,
        rt: jitter(rng, rt) * scale,
        br: jitter(rng, br) * scale,
        rm: jitter(rng, rm) * scale,
        wm: jitter(rng, wm) * scale,
    }
}

/// Anomaly rate of the synthetic trace: one in this many activations has
/// its counters inflated 10x (a soft error corrupting handler control
/// flow does exactly this to the Table-I counters).
pub const SYNTHETIC_ANOMALY_PERIOD: u64 = 512;

/// Generate `n` synthetic activations with rare planted anomalies.
pub fn synthetic_trace(n: usize, seed: u64) -> Vec<FeatureVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let anomalous = rng.gen_range(0..SYNTHETIC_ANOMALY_PERIOD) == 0;
            profile_features(&mut rng, anomalous)
        })
        .collect()
}

/// Train a detector on labeled synthetic data so the replay path works
/// even when `results/detector.json` has not been produced yet.
pub fn synthetic_detector(seed: u64) -> VmTransitionDetector {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for i in 0..4000u64 {
        let anomalous = i % 8 == 7; // balanced-enough training mix
        let f = profile_features(&mut rng, anomalous);
        ds.push(f.into_sample(if anomalous {
            Label::Incorrect
        } else {
            Label::Correct
        }));
    }
    VmTransitionDetector::new(DecisionTree::train(&ds, &TrainConfig::decision_tree()))
}

/// A labeled sample of the synthetic distribution (for tests needing
/// ground truth).
pub fn synthetic_labeled(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let anomalous = rng.gen_range(0..SYNTHETIC_ANOMALY_PERIOD) == 0;
            profile_features(&mut rng, anomalous).into_sample(if anomalous {
                Label::Incorrect
            } else {
                Label::Correct
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CollectSink, FleetConfig};
    use std::sync::Arc;

    #[test]
    fn synthetic_trace_is_deterministic_and_anomalous() {
        let a = synthetic_trace(4096, 9);
        let b = synthetic_trace(4096, 9);
        assert_eq!(a, b);
        let c = synthetic_trace(4096, 10);
        assert_ne!(a, c);
        // Expect a few 10x-inflated records.
        let det = synthetic_detector(1);
        let anomalies = a
            .iter()
            .filter(|f| det.classify(f) == Label::Incorrect)
            .count();
        assert!(
            anomalies > 0,
            "synthetic trace should contain detectable anomalies"
        );
        assert!(
            anomalies < a.len() / 50,
            "anomalies must be rare: {anomalies}"
        );
    }

    #[test]
    fn synthetic_detector_separates_the_distribution() {
        let det = synthetic_detector(3);
        let labeled = synthetic_labeled(4096, 77);
        let correct = labeled
            .iter()
            .filter(|s| {
                let f = FeatureVec {
                    vmer: s.features[0] as u16,
                    rt: s.features[1],
                    br: s.features[2],
                    rm: s.features[3],
                    wm: s.features[4],
                };
                det.classify(&f) == s.label
            })
            .count();
        let acc = correct as f64 / labeled.len() as f64;
        assert!(acc > 0.95, "synthetic detector accuracy {acc}");
    }

    #[test]
    fn replay_reaches_the_service() {
        let sink = Arc::new(CollectSink::default());
        let cfg = FleetConfig {
            shards: 2,
            queue_capacity: 4096,
            batch: 32,
            recorder_depth: 8,
            ..FleetConfig::default()
        };
        let svc = crate::FleetService::start(cfg, synthetic_detector(1), Arc::clone(&sink) as _);
        let trace = synthetic_trace(2048, 5);
        let rep = replay(
            &svc,
            &trace,
            &ReplayConfig {
                hosts: 3,
                records_per_host: 2000,
                rate_per_host: 0.0,
            },
        );
        assert_eq!(rep.sent, 6000);
        assert_eq!(rep.accepted + rep.rejected, 6000);
        let snap = svc.shutdown();
        assert_eq!(snap.classified, rep.accepted);
        assert_eq!(sink.verdicts.lock().unwrap().len(), rep.accepted as usize);
    }

    #[test]
    fn throttled_replay_respects_the_rate() {
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 1024,
            batch: 16,
            recorder_depth: 4,
            ..FleetConfig::default()
        };
        let svc = crate::FleetService::start(cfg, synthetic_detector(1), Arc::new(crate::NullSink));
        let trace = synthetic_trace(256, 5);
        // 2 hosts x 500 records at 5k/s each: should take ~100 ms.
        let rep = replay(
            &svc,
            &trace,
            &ReplayConfig {
                hosts: 2,
                records_per_host: 500,
                rate_per_host: 5000.0,
            },
        );
        let wall_ms = rep.wall_ns as f64 / 1e6;
        assert!(
            wall_ms >= 90.0,
            "throttle ignored: finished in {wall_ms} ms"
        );
        assert_eq!(
            rep.rejected, 0,
            "5k/s per host must not overrun a 1024 queue"
        );
        svc.shutdown();
    }

    #[test]
    fn workload_trace_collects_real_features() {
        let trace = workload_trace(guest_sim::Benchmark::Postmark, 64, 21);
        assert_eq!(trace.len(), 64);
        assert!(trace.iter().all(|f| f.rt > 0));
    }
}
