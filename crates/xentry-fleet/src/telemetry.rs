//! Scrapeable telemetry: Prometheus text exposition, a health probe, and
//! the Chrome-trace export, served over a plain `std::net::TcpListener`.
//!
//! The fleet's metrics were previously observable only as an end-of-run
//! JSON snapshot; none of the paper's live questions (detection latency
//! per VM exit, classifier overhead on the hot path, verdict provenance)
//! were answerable on a running service. This module exposes them the
//! way production fleets are actually watched:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) derived
//!   from the same [`Metrics`] the JSON snapshot uses, with per-shard,
//!   per-epoch and per-verdict-source labels and real `_bucket`/`_sum`/
//!   `_count` histograms;
//! * `GET /healthz` — liveness + degraded-mode flag as a one-line JSON
//!   object;
//! * `GET /trace` — the flight tracer's rings as Chrome trace-event JSON
//!   (same payload `fleet-replay` writes to `results/trace.json`).
//!
//! No HTTP library, no async runtime: one accept loop on a nonblocking
//! listener, one short-lived thread per server (not per connection — a
//! scrape endpoint serves one scraper, not the internet). Everything a
//! handler reads is a racy-consistent snapshot, so a scrape never touches
//! the classify hot path.
//!
//! [`Metrics`]: crate::metrics::Metrics

use crate::metrics::ServiceSnapshot;
use crate::net::{not_found, HttpServer};
use crate::service::Shared;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// The GET client lives in [`crate::net`] now (shared with the wire
// layer); re-exported here so existing `telemetry::http_get` callers and
// the crate-root export keep working.
pub use crate::net::http_get;

// ---------------------------------------------------------------------------
// Atomic result writes
// ---------------------------------------------------------------------------

/// Write `contents` to `path` atomically: the bytes go to a temp file in
/// the same directory, which is then renamed over the target. A reader
/// (or a kill signal) can never observe a half-written `results/*.json`;
/// it sees the old file or the new one, nothing in between.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let tmp: PathBuf = {
        let mut name = std::ffi::OsString::from(".");
        name.push(file_name);
        name.push(format!(".tmp.{}", std::process::id()));
        match dir {
            Some(d) => d.join(name),
            None => PathBuf::from(name),
        }
    };
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Escape a label value per the Prometheus text format: backslash, double
/// quote and newline must be escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` the way Prometheus clients expect: `+Inf`-style
/// specials never occur here, so plain shortest-repr formatting is fine,
/// but integral values drop the fractional point for stability.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental builder for the Prometheus text format. Public so other
/// exposition surfaces (the wire-layer aggregator's `/metrics`) emit the
/// exact same shapes this module's golden tests pin down.
pub struct Exposition {
    out: String,
}

impl Default for Exposition {
    fn default() -> Exposition {
        Exposition::new()
    }
}

impl Exposition {
    pub fn new() -> Exposition {
        Exposition {
            out: String::with_capacity(4096),
        }
    }

    /// Emit the `# HELP` / `# TYPE` header pair for a metric family.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out
                    .push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// Header plus a single unlabelled sample.
    pub fn scalar(&mut self, name: &str, kind: &str, help: &str, value: f64) {
        self.header(name, kind, help);
        self.sample(name, &[], value);
    }

    /// The rendered exposition so far.
    pub fn finish(self) -> String {
        self.out
    }

    fn histogram(&mut self, name: &str, help: &str, h: &crate::metrics::HistogramSnapshot) {
        self.header(name, "histogram", help);
        let mut cumulative = 0u64;
        for &(edge, count) in &h.buckets {
            cumulative += count;
            // The top log2 bucket's edge is u64::MAX; fold it into +Inf
            // rather than printing an 20-digit le no scraper can bucket.
            if edge == u64::MAX {
                continue;
            }
            self.sample(
                &format!("{name}_bucket"),
                &[("le", format!("{edge}"))],
                cumulative as f64,
            );
        }
        self.sample(
            &format!("{name}_bucket"),
            &[("le", "+Inf".to_string())],
            h.count as f64,
        );
        self.sample(&format!("{name}_sum"), &[], h.sum as f64);
        self.sample(&format!("{name}_count"), &[], h.count as f64);
    }
}

/// Render a [`ServiceSnapshot`] as Prometheus text exposition (0.0.4).
/// Pure and deterministic — series order is fixed — so the format is
/// golden-testable.
pub fn render_prometheus(s: &ServiceSnapshot) -> String {
    let mut e = Exposition::new();
    let p = |n: &str| format!("xentry_fleet_{n}");

    e.scalar(
        &p("uptime_seconds"),
        "gauge",
        "Seconds since the service started.",
        s.uptime_ns as f64 / 1e9,
    );
    e.header(
        &p("model_info"),
        "gauge",
        "Deployed model identity (constant 1; identity in labels).",
    );
    e.sample(
        &p("model_info"),
        &[
            ("version", format!("{}", s.model_version)),
            ("fingerprint", format!("{:016x}", s.model_fingerprint)),
        ],
        1.0,
    );
    e.scalar(
        &p("model_arena_bytes"),
        "gauge",
        "Bytes of the deployed model's compiled split arena.",
        s.model_arena_bytes as f64,
    );
    e.scalar(
        &p("model_nr_splits"),
        "gauge",
        "Split records in the deployed model's arena.",
        s.model_nr_splits as f64,
    );
    e.scalar(
        &p("model_hot_prefix_bytes"),
        "gauge",
        "Bytes of the profile-weighted hot prefix covering >=90% of split visits.",
        s.model_hot_prefix_bytes as f64,
    );
    e.scalar(
        &p("degraded"),
        "gauge",
        "1 while serving envelope-fallback verdicts, else 0.",
        if s.degraded { 1.0 } else { 0.0 },
    );
    e.scalar(
        &p("throughput_per_sec"),
        "gauge",
        "Classified records per second since start.",
        s.throughput_per_sec,
    );

    for (name, help, v) in [
        (
            "ingested_total",
            "Records accepted into a shard queue.",
            s.ingested,
        ),
        (
            "dropped_total",
            "Records rejected because the shard queue was full.",
            s.dropped,
        ),
        (
            "classified_total",
            "Records classified (all shards).",
            s.classified,
        ),
        (
            "lost_total",
            "Records claimed by a worker that panicked before classifying them.",
            s.lost,
        ),
        (
            "incorrect_total",
            "Verdicts labelled Incorrect.",
            s.incorrect,
        ),
        ("incidents_total", "Incident dumps emitted.", s.incidents),
        (
            "suppressed_incidents_total",
            "Incident dumps suppressed by the per-host rate limiter.",
            s.suppressed_incidents,
        ),
        ("swaps_total", "Model hot swaps performed.", s.swaps),
        (
            "swap_rejections_total",
            "Hot-swap candidates rejected by validation.",
            s.swap_rejections,
        ),
        (
            "rollbacks_total",
            "Model rollbacks to the previous epoch.",
            s.rollbacks,
        ),
        (
            "restarts_total",
            "Worker restarts (panic recoveries + stall replacements).",
            s.restarts,
        ),
        (
            "stalls_total",
            "Stalled shards detected by the heartbeat watchdog.",
            s.stalls,
        ),
        (
            "degraded_entries_total",
            "Times the service entered degraded mode.",
            s.degraded_entries,
        ),
        (
            "trace_events_total",
            "Flight-trace events recorded since start.",
            s.trace_events,
        ),
        (
            "trace_dropped_total",
            "Flight-trace events lost to ring overflow.",
            s.trace_dropped,
        ),
    ] {
        e.scalar(&p(name), "counter", help, v as f64);
    }

    e.header(
        &p("verdicts_total"),
        "counter",
        "Verdicts by detection path.",
    );
    e.sample(
        &p("verdicts_total"),
        &[("source", "model".to_string())],
        s.classified.saturating_sub(s.degraded_verdicts) as f64,
    );
    e.sample(
        &p("verdicts_total"),
        &[("source", "degraded_envelope".to_string())],
        s.degraded_verdicts as f64,
    );

    e.header(
        &p("epoch_verdicts_total"),
        "counter",
        "Verdicts produced under each model epoch.",
    );
    for ev in &s.epoch_verdicts {
        e.sample(
            &p("epoch_verdicts_total"),
            &[("epoch", format!("{}", ev.epoch))],
            ev.verdicts as f64,
        );
    }

    for (name, help, get) in [
        (
            "shard_classified_total",
            "Records classified by one shard.",
            (|sh| sh.classified) as fn(&crate::metrics::ShardSnapshot) -> u64,
        ),
        (
            "shard_incorrect_total",
            "Incorrect verdicts on one shard.",
            |sh| sh.incorrect,
        ),
        (
            "shard_dropped_total",
            "Full-queue drops on one shard.",
            |sh| sh.dropped,
        ),
        (
            "shard_batches_total",
            "Batches classified by one shard.",
            |sh| sh.batches,
        ),
        (
            "shard_lost_total",
            "Records lost to worker panics on one shard.",
            |sh| sh.lost,
        ),
        (
            "shard_restarts_total",
            "Worker restarts on one shard.",
            |sh| sh.restarts,
        ),
    ] {
        e.header(&p(name), "counter", help);
        for sh in &s.shards {
            e.sample(
                &p(name),
                &[("shard", format!("{}", sh.shard))],
                get(sh) as f64,
            );
        }
    }

    e.histogram(
        &p("queue_latency_ns"),
        "Time a record waited in its shard queue, nanoseconds.",
        &s.queue_latency,
    );
    e.histogram(
        &p("classify_latency_ns"),
        "Time to classify one record, nanoseconds.",
        &s.classify_latency,
    );
    e.finish()
}

/// One parsed exposition sample: metric name, labels, value.
pub type Sample = (String, Vec<(String, String)>, f64);

/// Minimal parser for the Prometheus text format — the shapes
/// [`render_prometheus`] emits, which is also what the CI self-scrape and
/// the golden tests validate against. Returns every sample or a
/// line-numbered error.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", ln + 1);
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `name value`"))?;
        let value: f64 = value.parse().map_err(|_| err("unparseable sample value"))?;
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                let mut remaining = body;
                while !remaining.is_empty() {
                    let (k, rest) = remaining
                        .split_once("=\"")
                        .ok_or_else(|| err("label without `=\"`"))?;
                    // Find the closing quote, honouring backslash escapes.
                    let mut end = None;
                    let mut escaped = false;
                    for (i, c) in rest.char_indices() {
                        match (escaped, c) {
                            (true, _) => escaped = false,
                            (false, '\\') => escaped = true,
                            (false, '"') => {
                                end = Some(i);
                                break;
                            }
                            _ => {}
                        }
                    }
                    let end = end.ok_or_else(|| err("unterminated label value"))?;
                    let raw = &rest[..end];
                    let unescaped = raw
                        .replace("\\n", "\n")
                        .replace("\\\"", "\"")
                        .replace("\\\\", "\\");
                    labels.push((k.to_string(), unescaped));
                    remaining = rest[end + 1..].trim_start_matches(',');
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("invalid metric name"));
        }
        out.push((name, labels, value));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The scrape server
// ---------------------------------------------------------------------------

/// `/healthz` payload: enough for a probe to decide liveness and whether
/// the fleet is serving full-strength verdicts.
fn healthz_json(s: &ServiceSnapshot) -> String {
    format!(
        "{{\"status\":\"{}\",\"uptime_ns\":{},\"model_version\":{},\"classified\":{},\"degraded\":{}}}",
        if s.degraded { "degraded" } else { "ok" },
        s.uptime_ns,
        s.model_version,
        s.classified,
        s.degraded,
    )
}

/// Handle to the scrape endpoint serving `/metrics`, `/healthz` and
/// `/trace` for one [`FleetService`]. Dropping (or [`shutdown`]) stops
/// the accept loop and joins the server thread. The transport is the
/// shared [`crate::net::HttpServer`]; this wrapper only owns the routes.
///
/// [`FleetService`]: crate::service::FleetService
/// [`shutdown`]: TelemetryServer::shutdown
pub struct TelemetryServer {
    server: HttpServer,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// serve the shared state's telemetry until shutdown.
    pub(crate) fn start(
        shared: Arc<Shared>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<TelemetryServer> {
        let server = HttpServer::start(addr, "fleet-telemetry", move |path| match path {
            "/metrics" => Some((
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&shared.snapshot()),
            )),
            "/healthz" => Some((
                "200 OK",
                "application/json",
                healthz_json(&shared.snapshot()),
            )),
            "/trace" => Some(("200 OK", "application/json", shared.tracer.export_chrome())),
            _ => Some(not_found("/metrics, /healthz or /trace")),
        })?;
        Ok(TelemetryServer { server })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_escape_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_label_value("q\"\\\n"),
            "q\\\"\\\\\\n",
            "all three specials in one value"
        );
    }

    #[test]
    fn parse_round_trips_escaped_labels() {
        let text = "m{k=\"a\\\"b\\\\c\\nd\",s=\"0\"} 42\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 1);
        let (name, labels, value) = &samples[0];
        assert_eq!(name, "m");
        assert_eq!(labels[0], ("k".to_string(), "a\"b\\c\nd".to_string()));
        assert_eq!(labels[1], ("s".to_string(), "0".to_string()));
        assert_eq!(*value, 42.0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("m{unterminated=\"x 1\n").is_err());
        assert!(parse_exposition("bad-name 1\n").is_err());
        assert!(parse_exposition("# comments pass\n\nok 1\n").is_ok());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("xentry-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        write_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fmt_value_keeps_integers_exact() {
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(1.5), "1.5");
    }
}
