//! Per-host flight recorder.
//!
//! Each shard worker keeps a small ring buffer of the last `N`
//! activations per host it serves. When the deployed model classifies an
//! activation as `Incorrect`, the ring is dumped into an [`IncidentDump`]
//! — the fleet-level analogue of the post-mortem trace inspection in
//! `examples/post_mortem.rs`: the investigator gets the suspect
//! activation plus the activations that led up to it, tagged with the
//! model version that raised the alarm.

use crate::record::{HostId, TelemetryRecord};
use crate::trace::TraceEvent;
use mltree::Label;
use serde::{Deserialize, Serialize};

/// One remembered activation (record + its verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedActivation {
    pub seq: u64,
    pub vcpu: u32,
    pub features: xentry::FeatureVec,
    pub label: Label,
    pub model_version: u64,
    /// Flight-trace id stamped on the record at ingest (0 when tracing
    /// is disabled).
    pub trace_id: u64,
}

/// Fixed-depth ring of recent activations for one host.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    depth: usize,
    ring: Vec<RecordedActivation>,
    next: usize,
    total: u64,
}

impl FlightRecorder {
    pub fn new(depth: usize) -> FlightRecorder {
        let depth = depth.max(1);
        FlightRecorder {
            depth,
            ring: Vec::with_capacity(depth),
            next: 0,
            total: 0,
        }
    }

    /// Remember one classified activation.
    pub fn push(&mut self, rec: &TelemetryRecord, label: Label, model_version: u64) {
        let entry = RecordedActivation {
            seq: rec.seq,
            vcpu: rec.vcpu,
            features: rec.features,
            label,
            model_version,
            trace_id: rec.trace_id,
        };
        if self.ring.len() < self.depth {
            self.ring.push(entry);
        } else {
            self.ring[self.next] = entry;
        }
        self.next = (self.next + 1) % self.depth;
        self.total += 1;
    }

    /// Activations seen so far (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Recent activations, oldest first.
    pub fn recent(&self) -> Vec<RecordedActivation> {
        if self.ring.len() < self.depth {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.depth);
            out.extend_from_slice(&self.ring[self.next..]);
            out.extend_from_slice(&self.ring[..self.next]);
            out
        }
    }

    /// Dump the ring on an incident. The trigger is the last pushed entry.
    pub fn dump(&self, host: HostId) -> IncidentDump {
        self.dump_with_trace(host, Vec::new())
    }

    /// [`FlightRecorder::dump`] with the shard's trailing flight-trace
    /// events attached, so the dump carries the causal event chain
    /// (queue waits, batch spans, control events) around the trigger —
    /// not just the per-host activation history.
    pub fn dump_with_trace(&self, host: HostId, trace: Vec<TraceEvent>) -> IncidentDump {
        let recent = self.recent();
        let trigger = *recent.last().expect("dump after at least one push");
        IncidentDump {
            host,
            trace_id: trigger.trace_id,
            trigger,
            recent,
            total_seen: self.total,
            trace,
        }
    }
}

/// Token bucket bounding incident-dump emission for one host.
///
/// An `Incorrect` verdict clones the host's whole flight-recorder ring
/// into an [`IncidentDump`]. During an error storm — a genuinely broken
/// host, or a miscalibrated model flagging everything — that is an
/// allocation per record, fleet-wide, forever. The bucket lets `burst`
/// dumps through back-to-back (real incidents cluster), then refills at
/// `per_sec`; everything beyond is suppressed and counted. Suppression
/// loses *dumps*, never verdicts: the `Incorrect` label, the incident
/// counter, and the ring itself are untouched, so the next allowed dump
/// still carries the latest context.
#[derive(Debug, Clone)]
pub struct DumpBudget {
    burst: u64,
    /// Nanoseconds per replenished token; 0 disables limiting.
    refill_interval_ns: u64,
    tokens: u64,
    last_refill_ns: u64,
}

impl DumpBudget {
    /// Allow `burst` dumps at once, refilling at `per_sec` tokens/second.
    /// `burst == 0` disables limiting entirely (every dump allowed).
    pub fn new(burst: u64, per_sec: u64) -> DumpBudget {
        DumpBudget {
            burst,
            refill_interval_ns: if burst == 0 || per_sec == 0 {
                0
            } else {
                1_000_000_000 / per_sec.min(1_000_000_000)
            },
            tokens: burst,
            last_refill_ns: 0,
        }
    }

    /// Spend one token if available. `now_ns` is any monotone clock (the
    /// service's `now_ns`); only differences matter.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        if self.burst == 0 {
            return true;
        }
        let elapsed = now_ns.saturating_sub(self.last_refill_ns);
        if let Some(earned) = elapsed.checked_div(self.refill_interval_ns) {
            if earned > 0 {
                self.tokens = (self.tokens + earned).min(self.burst);
                // Advance by whole tokens only, so fractional refill time
                // is never discarded.
                self.last_refill_ns += earned * self.refill_interval_ns;
            }
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// Everything an investigator needs about one `Incorrect` verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentDump {
    pub host: HostId,
    /// Flight-trace id of the trigger record — the key for finding its
    /// span chain in `results/trace.json` (0 when tracing is disabled).
    pub trace_id: u64,
    /// The activation that tripped the detector.
    pub trigger: RecordedActivation,
    /// Last `N` activations on this host, oldest first (includes the
    /// trigger as the final entry).
    pub recent: Vec<RecordedActivation>,
    /// Total activations this host had reported when the incident fired.
    pub total_seen: u64,
    /// Trailing flight-trace events from the trigger's shard at dump
    /// time, oldest first (empty when tracing is disabled or the dump
    /// came from the traceless [`FlightRecorder::dump`]).
    pub trace: Vec<TraceEvent>,
}

impl IncidentDump {
    /// Human-readable post-mortem block (mirrors the `post_mortem`
    /// example's trace dump).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "incident: host {} vcpu {} seq {} (model v{})",
            self.host, self.trigger.vcpu, self.trigger.seq, self.trigger.model_version
        );
        if self.trace_id != 0 {
            let _ = writeln!(
                out,
                "  trace id {} ({} shard trace events attached)",
                self.trace_id,
                self.trace.len()
            );
        }
        let f = &self.trigger.features;
        let _ = writeln!(
            out,
            "  trigger features: vmer={} rt={} br={} rm={} wm={}",
            f.vmer, f.rt, f.br, f.rm, f.wm
        );
        let _ = writeln!(
            out,
            "  last {} activations (oldest first):",
            self.recent.len()
        );
        for a in &self.recent {
            let mark = if a.label == Label::Incorrect {
                " <-- INCORRECT"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    seq {:>8} vmer={:<3} rt={:<8} br={:<6} rm={:<6} wm={:<6}{}",
                a.seq,
                a.features.vmer,
                a.features.rt,
                a.features.br,
                a.features.rm,
                a.features.wm,
                mark
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xentry::FeatureVec;

    fn rec(seq: u64) -> TelemetryRecord {
        TelemetryRecord::new(
            7,
            0,
            seq,
            FeatureVec {
                vmer: 17,
                rt: seq,
                br: 1,
                rm: 1,
                wm: 1,
            },
        )
    }

    #[test]
    fn ring_keeps_last_n_in_order() {
        let mut fr = FlightRecorder::new(4);
        for seq in 0..10 {
            fr.push(&rec(seq), Label::Correct, 1);
        }
        let recent = fr.recent();
        assert_eq!(
            recent.iter().map(|a| a.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(fr.total(), 10);
    }

    #[test]
    fn partial_ring_dumps_what_exists() {
        let mut fr = FlightRecorder::new(8);
        fr.push(&rec(1), Label::Correct, 1);
        fr.push(&rec(2), Label::Incorrect, 1);
        let dump = fr.dump(7);
        assert_eq!(dump.host, 7);
        assert_eq!(dump.trigger.seq, 2);
        assert_eq!(dump.trigger.label, Label::Incorrect);
        assert_eq!(dump.recent.len(), 2);
        assert_eq!(dump.total_seen, 2);
    }

    #[test]
    fn render_flags_the_trigger() {
        let mut fr = FlightRecorder::new(4);
        fr.push(&rec(5), Label::Correct, 2);
        fr.push(&rec(6), Label::Incorrect, 2);
        let text = fr.dump(3).render();
        assert!(text.contains("host 3"), "{text}");
        assert!(text.contains("model v2"), "{text}");
        assert!(text.contains("<-- INCORRECT"), "{text}");
    }

    #[test]
    fn dump_budget_limits_bursts_and_refills() {
        let mut b = DumpBudget::new(3, 10); // 3 burst, one token per 100 ms
        let t0 = 5_000_000_000u64;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        assert!(!b.try_take(t0 + 99_000_000), "no token before 100 ms");
        assert!(b.try_take(t0 + 100_000_000), "one token after 100 ms");
        assert!(!b.try_take(t0 + 100_000_000));
        // A long quiet period refills to the cap, not beyond.
        assert!(b.try_take(t0 + 60_000_000_000));
        assert!(b.try_take(t0 + 60_000_000_000));
        assert!(b.try_take(t0 + 60_000_000_000));
        assert!(!b.try_take(t0 + 60_000_000_000), "cap is the burst size");
    }

    #[test]
    fn dump_budget_zero_burst_is_unlimited() {
        let mut b = DumpBudget::new(0, 0);
        for i in 0..10_000u64 {
            assert!(b.try_take(i));
        }
    }

    #[test]
    fn dump_budget_without_refill_is_a_lifetime_cap() {
        let mut b = DumpBudget::new(2, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(u64::MAX / 2));
        assert!(!b.try_take(u64::MAX));
    }

    #[test]
    fn dump_serializes() {
        let mut fr = FlightRecorder::new(2);
        fr.push(&rec(1), Label::Incorrect, 1);
        let json = serde_json::to_string(&fr.dump(9)).unwrap();
        let back: IncidentDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back.host, 9);
        assert_eq!(back.trigger.seq, 1);
        assert_eq!(back.trace_id, 0, "traceless dump carries no id");
        assert!(back.trace.is_empty());
    }

    #[test]
    fn dump_with_trace_links_trigger_id_and_events() {
        use crate::trace::{SpanKind, TraceEvent};
        let mut fr = FlightRecorder::new(2);
        let mut r = rec(3);
        r.trace_id = 77;
        fr.push(&r, Label::Incorrect, 1);
        let events = vec![TraceEvent {
            ts_ns: 10,
            dur_ns: 5,
            trace_id: 77,
            kind: SpanKind::Verdict,
            arg: 1,
            lane: 0,
        }];
        let dump = fr.dump_with_trace(7, events);
        assert_eq!(dump.trace_id, 77, "dump keys on the trigger's trace id");
        assert_eq!(dump.trace.len(), 1);
        let text = dump.render();
        assert!(text.contains("trace id 77"), "{text}");
        let back: IncidentDump =
            serde_json::from_str(&serde_json::to_string(&dump).unwrap()).unwrap();
        assert_eq!(back.trace[0].trace_id, 77);
    }
}
