//! Shard worker: drains one queue in batches, classifies with the cached
//! model, maintains per-host flight recorders, and reports verdicts.
//!
//! Hosts are statically sharded (`host % nr_shards`), so every host's
//! records are classified by exactly one worker; the flight recorders can
//! therefore live in worker-local state with no locking at all. (A
//! replacement worker spawned after a stall starts with fresh recorders
//! and a fresh envelope — worker-local context is the price of lock-free
//! recording, and it rebuilds within one recorder depth of traffic.)
//!
//! The worker cooperates with [`crate::supervisor`] through three cheap
//! per-loop signals: it re-checks its shard *generation* (a moved
//! generation means a replacement owns the queue — finish the in-flight
//! batch, then exit), stores a *heartbeat* timestamp, and keeps the
//! supervisor's *in-flight* counter equal to the number of claimed but
//! not-yet-classified records so a panic loses nothing silently.

use crate::model::ModelCache;
use crate::record::{FleetVerdict, HostId, TelemetryRecord, VerdictSource};
use crate::recorder::{DumpBudget, FlightRecorder};
use crate::service::Shared;
use crate::supervisor::WorkerExit;
use crate::trace::SpanKind;
use mltree::Label;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xentry::{EnvelopeDetector, FeatureVec};

/// Spin this many empty polls before yielding, and yield this many before
/// sleeping: keeps latency low under load without burning an idle core.
const SPIN_POLLS: u32 = 64;
const YIELD_POLLS: u32 = 256;

/// Degraded-mode fallback tuning: absolute slack around the learned
/// per-VMER bounds, and samples per VMER before the envelope trusts
/// itself (under-sampled reasons fail open).
const ENVELOPE_SLACK: u64 = 8;
const ENVELOPE_MIN_SAMPLES: u64 = 32;

pub(crate) fn run_worker(
    shared: &Arc<Shared>,
    shard: usize,
    my_gen: u64,
    inflight: &AtomicU64,
) -> WorkerExit {
    let queue = &shared.queues[shard];
    let sup = &shared.supervision.shards[shard];
    let mut cache = ModelCache::new(&shared.model);
    let mut recorders: HashMap<HostId, (FlightRecorder, DumpBudget)> = HashMap::new();
    // Degraded-mode fallback: a runtime envelope learned online from
    // activations the model approved. If the model path becomes unusable
    // the shard keeps serving (weaker, tagged) verdicts from this.
    let mut envelope = EnvelopeDetector::new(ENVELOPE_SLACK, ENVELOPE_MIN_SAMPLES);
    let mut batch: Vec<TelemetryRecord> = Vec::with_capacity(shared.cfg.batch);
    let mut features: Vec<FeatureVec> = Vec::with_capacity(shared.cfg.batch);
    let mut labels: Vec<Label> = Vec::with_capacity(shared.cfg.batch);
    let mut idle: u32 = 0;
    loop {
        if sup.gen.load(Ordering::Acquire) != my_gen {
            return WorkerExit::Superseded;
        }
        sup.heartbeat_ns.store(shared.now_ns(), Ordering::Relaxed);
        batch.clear();
        while batch.len() < shared.cfg.batch {
            match queue.pop() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        if batch.is_empty() {
            // Drain-then-exit: producers stop ingesting before `stop` is
            // set, so an empty queue after observing `stop` is final.
            if shared.stop.load(Ordering::Acquire) && queue.is_empty() {
                return WorkerExit::Stopped;
            }
            idle += 1;
            if idle < SPIN_POLLS {
                std::hint::spin_loop();
            } else if idle < YIELD_POLLS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            continue;
        }
        idle = 0;
        // Everything claimed from here on is visible to the supervisor:
        // if this worker dies mid-batch, exactly `inflight` records are
        // accounted as lost.
        inflight.store(batch.len() as u64, Ordering::Relaxed);
        if let Some(stall) = shared.failpoints.take_stall(shard) {
            // Injected stall: sleep without heartbeating, which is
            // exactly what a wedged worker looks like to the watchdog.
            std::thread::sleep(stall);
        }
        // One epoch check per batch: the hot-swap cost on this path is a
        // single Acquire load.
        let model = Arc::clone(cache.get(&shared.model));
        let shard_metrics = &shared.metrics.shards[shard];
        let dequeued_ns = shared.now_ns();
        features.clear();
        features.extend(batch.iter().map(|r| r.features));
        labels.clear();
        labels.resize(batch.len(), Label::Correct);
        let degraded = shared.supervision.degraded.load(Ordering::Relaxed);
        let (source, batch_ns) = if degraded {
            let t0 = Instant::now();
            for (f, l) in features.iter().zip(labels.iter_mut()) {
                *l = envelope.classify(f);
            }
            (
                VerdictSource::DegradedEnvelope,
                t0.elapsed().as_nanos() as u64,
            )
        } else {
            // The panic failpoint models a fault on the model/classify
            // path, so it sits inside the non-degraded branch — degraded
            // mode is precisely the state that routes around it.
            shared.failpoints.maybe_panic(shard);
            // One compiled-arena batch call classifies the whole drain;
            // the per-record latency histogram is preserved by amortizing
            // the batch walk over its records. The detector's own timed
            // span hook measures the arena walk and nothing else.
            let span = model.detector.classify_batch_timed(&features, &mut labels);
            (VerdictSource::Model, span.elapsed_ns)
        };
        let per_record_ns = batch_ns / batch.len() as u64;
        // One batch-level span covering the classify call itself, plus
        // per-epoch verdict attribution — both once per batch, off the
        // per-record path.
        shared.tracer.record(
            shard,
            SpanKind::BatchClassify,
            dequeued_ns,
            batch_ns,
            0,
            batch.len() as u64,
        );
        shared
            .metrics
            .count_epoch_verdicts(model.version, batch.len() as u64);
        if degraded {
            shared
                .metrics
                .degraded_verdicts
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        let mut remaining = batch.len() as u64;
        for (rec, &label) in batch.iter().zip(labels.iter()) {
            let queue_wait_ns = dequeued_ns.saturating_sub(rec.enqueued_ns);
            shared.metrics.queue_latency.record(queue_wait_ns);
            shared.metrics.classify_latency.record(per_record_ns);
            // Two spans per record close the ingest→classify→verdict
            // chain for this trace id: the wait in the shard queue and
            // the verdict itself (arg bit 0 = Incorrect, bit 1 =
            // degraded-envelope source).
            shared.tracer.record(
                shard,
                SpanKind::QueueWait,
                rec.enqueued_ns,
                queue_wait_ns,
                rec.trace_id,
                rec.host as u64,
            );
            shared.tracer.record(
                shard,
                SpanKind::Verdict,
                dequeued_ns,
                per_record_ns,
                rec.trace_id,
                (label == Label::Incorrect) as u64
                    | (((source == VerdictSource::DegradedEnvelope) as u64) << 1),
            );
            let (recorder, budget) = recorders.entry(rec.host).or_insert_with(|| {
                (
                    FlightRecorder::new(shared.cfg.recorder_depth),
                    DumpBudget::new(shared.cfg.incident_burst, shared.cfg.incident_per_sec),
                )
            });
            recorder.push(rec, label, model.version);
            let verdict = FleetVerdict {
                host: rec.host,
                vcpu: rec.vcpu,
                seq: rec.seq,
                label,
                model_version: model.version,
                model_fingerprint: model.fingerprint,
                source,
                trace_id: rec.trace_id,
            };
            shared.sink.on_verdict(&verdict);
            if label == Label::Incorrect {
                shard_metrics.incorrect.fetch_add(1, Ordering::Relaxed);
                if budget.try_take(shared.now_ns()) {
                    shared.metrics.incidents.fetch_add(1, Ordering::Relaxed);
                    // The dump carries this shard's trailing trace events
                    // so an incident is debuggable from the dump alone.
                    shared.sink.on_incident(
                        &recorder.dump_with_trace(rec.host, shared.tracer.tail(shard, 32)),
                    );
                } else {
                    shared
                        .metrics
                        .suppressed_incidents
                        .fetch_add(1, Ordering::Relaxed);
                }
            } else if source == VerdictSource::Model {
                // Feed the degraded-mode fallback from model-approved
                // activations only.
                envelope.absorb(&rec.features);
            }
            // A record counts as classified only once its sink calls
            // returned; until then it stays in `inflight` so a panic in
            // the sink is charged to `lost`, never dropped silently.
            remaining -= 1;
            inflight.store(remaining, Ordering::Relaxed);
            shard_metrics.classified.fetch_add(1, Ordering::Relaxed);
        }
        shard_metrics.batches.fetch_add(1, Ordering::Relaxed);
        if sup.consecutive_panics.load(Ordering::Relaxed) != 0 {
            // A fully classified batch ends the panic streak.
            sup.consecutive_panics.store(0, Ordering::Relaxed);
        }
    }
}
