//! Shard worker: drains one queue in batches, classifies with the cached
//! model, maintains per-host flight recorders, and reports verdicts.
//!
//! Hosts are statically sharded (`host % nr_shards`), so every host's
//! records are classified by exactly one worker; the flight recorders can
//! therefore live in worker-local state with no locking at all.

use crate::model::ModelCache;
use crate::record::{FleetVerdict, HostId, TelemetryRecord};
use crate::recorder::FlightRecorder;
use crate::service::Shared;
use mltree::Label;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use xentry::FeatureVec;

/// Spin this many empty polls before yielding, and yield this many before
/// sleeping: keeps latency low under load without burning an idle core.
const SPIN_POLLS: u32 = 64;
const YIELD_POLLS: u32 = 256;

pub(crate) fn run_worker(shared: Arc<Shared>, shard: usize) {
    let queue = &shared.queues[shard];
    let mut cache = ModelCache::new(&shared.model);
    let mut recorders: HashMap<HostId, FlightRecorder> = HashMap::new();
    let mut batch: Vec<TelemetryRecord> = Vec::with_capacity(shared.cfg.batch);
    let mut features: Vec<FeatureVec> = Vec::with_capacity(shared.cfg.batch);
    let mut labels: Vec<Label> = Vec::with_capacity(shared.cfg.batch);
    let mut idle: u32 = 0;
    loop {
        batch.clear();
        while batch.len() < shared.cfg.batch {
            match queue.pop() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        if batch.is_empty() {
            // Drain-then-exit: producers stop ingesting before `stop` is
            // set, so an empty queue after observing `stop` is final.
            if shared.stop.load(Ordering::Acquire) && queue.is_empty() {
                return;
            }
            idle += 1;
            if idle < SPIN_POLLS {
                std::hint::spin_loop();
            } else if idle < YIELD_POLLS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            continue;
        }
        idle = 0;
        // One epoch check per batch: the hot-swap cost on this path is a
        // single Acquire load.
        let model = Arc::clone(cache.get(&shared.model));
        let shard_metrics = &shared.metrics.shards[shard];
        let dequeued_ns = shared.now_ns();
        // One compiled-arena batch call classifies the whole drain; the
        // per-record latency histogram is preserved by amortizing the
        // batch walk over its records.
        features.clear();
        features.extend(batch.iter().map(|r| r.features));
        labels.clear();
        labels.resize(batch.len(), Label::Correct);
        let t0 = Instant::now();
        model.detector.classify_batch(&features, &mut labels);
        let per_record_ns = t0.elapsed().as_nanos() as u64 / batch.len() as u64;
        for (rec, &label) in batch.iter().zip(labels.iter()) {
            shared
                .metrics
                .queue_latency
                .record(dequeued_ns.saturating_sub(rec.enqueued_ns));
            shared.metrics.classify_latency.record(per_record_ns);
            shard_metrics.classified.fetch_add(1, Ordering::Relaxed);
            let recorder = recorders
                .entry(rec.host)
                .or_insert_with(|| FlightRecorder::new(shared.cfg.recorder_depth));
            recorder.push(rec, label, model.version);
            let verdict = FleetVerdict {
                host: rec.host,
                vcpu: rec.vcpu,
                seq: rec.seq,
                label,
                model_version: model.version,
                model_fingerprint: model.fingerprint,
            };
            shared.sink.on_verdict(&verdict);
            if label == Label::Incorrect {
                shard_metrics.incorrect.fetch_add(1, Ordering::Relaxed);
                shared.metrics.incidents.fetch_add(1, Ordering::Relaxed);
                shared.sink.on_incident(&recorder.dump(rec.host));
            }
        }
        shard_metrics.batches.fetch_add(1, Ordering::Relaxed);
    }
}
