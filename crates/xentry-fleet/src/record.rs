//! Telemetry and verdict record types flowing through the fleet service.
//!
//! A [`TelemetryRecord`] is what a per-host Xentry shim would emit at every
//! VM entry: the Table-I feature vector plus enough identity (host, VCPU,
//! per-host sequence number) to attribute the verdict. Records are `Copy`
//! and fixed-size so the ingest path moves them into preallocated queue
//! slots without touching the allocator.

use serde::{Deserialize, Serialize};
use xentry::FeatureVec;

/// Identifier of a simulated platform instance in the fleet.
pub type HostId = u32;

/// One hypervisor activation reported by a host's shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Reporting host.
    pub host: HostId,
    /// VCPU whose VM entry produced the features.
    pub vcpu: u32,
    /// Per-host monotonically increasing activation number.
    pub seq: u64,
    /// Nanoseconds since service start at enqueue time (stamped by the
    /// service on ingest; senders leave it 0).
    pub enqueued_ns: u64,
    /// Flight-trace id (stamped by the service on ingest; senders leave
    /// it 0, and it stays 0 when tracing is disabled). Flows unchanged
    /// into the record's [`FleetVerdict`] and, for `Incorrect` verdicts,
    /// its incident dump — the link from any verdict back to the causal
    /// span chain in `results/trace.json`.
    pub trace_id: u64,
    /// The five Table-I features of the activation.
    pub features: FeatureVec,
}

impl TelemetryRecord {
    /// Build a record; `enqueued_ns` and `trace_id` are stamped later by
    /// the service.
    pub fn new(host: HostId, vcpu: u32, seq: u64, features: FeatureVec) -> TelemetryRecord {
        TelemetryRecord {
            host,
            vcpu,
            seq,
            enqueued_ns: 0,
            trace_id: 0,
            features,
        }
    }
}

/// Which detection path produced a verdict — the provenance consumers
/// need before trusting a label. The fleet never silently drops records
/// when the model path is unhealthy; it keeps serving with a weaker
/// detector and says so here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictSource {
    /// The deployed [`VmTransitionDetector`] (normal operation).
    ///
    /// [`VmTransitionDetector`]: xentry::VmTransitionDetector
    Model,
    /// Degraded mode: the worker's self-trained runtime envelope
    /// ([`xentry::EnvelopeDetector`] bounds learned online from
    /// model-approved activations). Coverage is runtime-detection-only —
    /// cross-feature structure is lost — but records keep getting
    /// verdicts instead of vanishing.
    DegradedEnvelope,
}

/// Result of classifying one telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetVerdict {
    pub host: HostId,
    pub vcpu: u32,
    pub seq: u64,
    /// Classification by the deployed tree (or the degraded fallback —
    /// see `source`).
    pub label: mltree::Label,
    /// Version of the model that produced this verdict (monotone,
    /// incremented by every hot swap and rollback).
    pub model_version: u64,
    /// Fingerprint of that model (stable across processes).
    pub model_fingerprint: u64,
    /// Detection path that produced the label.
    pub source: VerdictSource,
    /// Flight-trace id carried from the record that produced this verdict
    /// (0 when tracing is disabled).
    pub trace_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_small_and_copyable() {
        // The ingest hot path copies records by value into queue slots;
        // keep them register-friendly (identity + stamps + trace id in
        // one line, features spilling into a second).
        assert!(std::mem::size_of::<TelemetryRecord>() <= 72);
        let r = TelemetryRecord::new(
            3,
            1,
            42,
            FeatureVec {
                vmer: 7,
                rt: 1,
                br: 2,
                rm: 3,
                wm: 4,
            },
        );
        let r2 = r; // Copy
        assert_eq!(r, r2);
        assert_eq!(r.enqueued_ns, 0);
    }

    #[test]
    fn verdict_serializes_with_version() {
        let v = FleetVerdict {
            host: 1,
            vcpu: 0,
            seq: 9,
            label: mltree::Label::Incorrect,
            model_version: 3,
            model_fingerprint: 0xdead,
            source: VerdictSource::Model,
            trace_id: 41,
        };
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"model_version\":3"), "{s}");
        assert!(s.contains("Incorrect"), "{s}");
        assert!(s.contains("Model"), "{s}");
        let degraded = FleetVerdict {
            source: VerdictSource::DegradedEnvelope,
            ..v
        };
        let s = serde_json::to_string(&degraded).unwrap();
        assert!(s.contains("DegradedEnvelope"), "{s}");
    }
}
