//! Service-level chaos harness: inject the fault classes the fleet
//! claims to survive into a *live* replay and assert the recovery
//! invariants hold.
//!
//! This is `faultsim::injection` lifted one level up: where faultsim
//! flips architectural bits under a single hypervisor activation and
//! checks detection, this module injects *service-level* faults —
//! panicking detectors, bit-flipped model arenas offered for deployment,
//! stalled shard workers, saturated ingest queues — under a running
//! [`FleetService`] and checks the self-protection machinery:
//!
//! * **No silent loss** — after a drained shutdown, every accepted record
//!   is either classified or counted in `lost`; every rejected ingest is
//!   in `dropped`.
//! * **Recovery** — after the last injection is disarmed, every shard
//!   produces verdicts again within the recovery deadline.
//! * **Deploy safety** — corrupted candidates (structural and semantic
//!   arena bit-flips) are rejected without moving the model epoch, and
//!   the panic-storm rollback restores the previous model's fingerprint.
//! * **Verdict integrity** — every model-path verdict agrees with a
//!   reference classification of the same features; degraded-path
//!   verdicts are tagged and counted, never mixed in silently.
//!
//! Injection uses [`Failpoints`]: inert atomics compiled into the worker
//! loop, checked at most twice per *batch* (one relaxed bool load on the
//! armed flag), so the production hot path pays nothing measurable.

use crate::record::VerdictSource;
use crate::replay::{self, ReplayConfig, ReplayReport};
use crate::service::{CollectSink, FleetConfig, FleetService};
use crate::ServiceSnapshot;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xentry::{FeatureVec, VmTransitionDetector};

/// Chaos failpoints wired into every shard worker. Inert until armed;
/// arming is test/harness-only (the service never arms them itself).
pub struct Failpoints {
    armed: AtomicBool,
    /// Batches each shard's worker will panic on (decremented per panic).
    panic_batches: Vec<AtomicU32>,
    /// One-shot stall duration per shard, consumed by the next batch.
    stall_ns: Vec<AtomicU64>,
}

impl Failpoints {
    pub(crate) fn new(nr_shards: usize) -> Failpoints {
        Failpoints {
            armed: AtomicBool::new(false),
            panic_batches: (0..nr_shards).map(|_| AtomicU32::new(0)).collect(),
            stall_ns: (0..nr_shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Make `shard`'s worker panic at the start of its next `batches`
    /// non-empty batches (models a detector/sink fault on the model path).
    pub fn inject_panics(&self, shard: usize, batches: u32) {
        self.panic_batches[shard].store(batches, Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Make `shard`'s worker sleep through `stall` (without heartbeating)
    /// before its next batch — a wedged worker, as the watchdog sees it.
    pub fn inject_stall(&self, shard: usize, stall: Duration) {
        self.stall_ns[shard].store(stall.as_nanos() as u64, Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Clear every armed failpoint.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        for p in &self.panic_batches {
            p.store(0, Ordering::Relaxed);
        }
        for s in &self.stall_ns {
            s.store(0, Ordering::Relaxed);
        }
    }

    /// Worker hook: panic if a panic budget is armed for `shard`.
    pub(crate) fn maybe_panic(&self, shard: usize) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        let fired = self.panic_batches[shard]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if fired {
            panic!("chaos: injected detector panic on shard {shard}");
        }
    }

    /// Worker hook: take the one-shot stall for `shard`, if armed.
    pub(crate) fn take_stall(&self, shard: usize) -> Option<Duration> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        match self.stall_ns[shard].swap(0, Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }
}

/// Shape of a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Replay hosts (each on its own sender thread).
    pub hosts: usize,
    /// Records each replay host sends.
    pub records_per_host: usize,
    /// Classification shards.
    pub shards: usize,
    pub seed: u64,
    /// Throttled replay rate per host (records/second); keeps traffic
    /// flowing across the whole injection timeline.
    pub rate_per_host: f64,
    /// Probe records per shard used to prove post-storm recovery.
    pub probes_per_shard: usize,
    /// Wall-clock budget for each waited-on transition (panic observed,
    /// stall detected, degraded entered, recovery proven).
    pub deadline_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            hosts: 4,
            records_per_host: 30_000,
            shards: 4,
            seed: 42,
            rate_per_host: 10_000.0,
            probes_per_shard: 256,
            deadline_ms: 10_000,
        }
    }
}

/// What the harness injected and what it observed. `violations` is empty
/// iff every recovery invariant held.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosReport {
    pub injected_panic_batches: u64,
    pub injected_stalls: u64,
    pub rejected_swaps: u64,
    pub valid_swaps: u64,
    /// The supervisor's panic-storm rollback restored the pre-swap
    /// model's fingerprint.
    pub rollback_restored_fingerprint: bool,
    /// Burst-ingest saturation probe: sent/accepted/rejected.
    pub burst_sent: u64,
    pub burst_accepted: u64,
    pub burst_rejected: u64,
    /// Model-path verdicts checked against the reference classifier.
    pub parity_checked: u64,
    pub parity_mismatches: u64,
    /// Degraded-path verdicts observed in the sink.
    pub degraded_seen: u64,
    pub replay: ReplayReport,
    pub snapshot: ServiceSnapshot,
    pub violations: Vec<String>,
}

impl ChaosReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let s = &self.snapshot;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos run: {}",
            if self.is_clean() {
                "CLEAN"
            } else {
                "VIOLATIONS"
            }
        );
        let _ = writeln!(
            out,
            "  injected: {} panic batches, {} stalls, {} corrupt swaps, {} valid swaps",
            self.injected_panic_batches,
            self.injected_stalls,
            self.rejected_swaps,
            self.valid_swaps
        );
        let _ = writeln!(
            out,
            "  accounting: ingested {} = classified {} + lost {} | dropped {}",
            s.ingested, s.classified, s.lost, s.dropped
        );
        let _ = writeln!(
            out,
            "  supervision: {} restarts, {} stalls detected, {} rollbacks, {} swap rejections",
            s.restarts, s.stalls, s.rollbacks, s.swap_rejections
        );
        let _ = writeln!(
            out,
            "  degraded: {} entries, {} envelope verdicts | incidents {} (+{} suppressed)",
            s.degraded_entries, s.degraded_verdicts, s.incidents, s.suppressed_incidents
        );
        let _ = writeln!(
            out,
            "  parity: {} model verdicts checked, {} mismatches | rollback fingerprint restored: {}",
            self.parity_checked, self.parity_mismatches, self.rollback_restored_fingerprint
        );
        for v in &self.violations {
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
        out
    }

    /// Panic with the report if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "{}", self.render());
    }
}

/// A known-nominal feature vector (VMER-17 profile center) used for pump
/// and probe traffic, so its expected verdict is reference-computable.
fn pump_features() -> FeatureVec {
    FeatureVec {
        vmer: 17,
        rt: 70,
        br: 7,
        rm: 9,
        wm: 5,
    }
}

/// Ingest pump/probe traffic into `shard`'s queue (host ids are placed
/// above the replay range so their features are reconstructable).
struct Pump {
    host: u32,
    seq: u64,
    accepted: u64,
    rejected: u64,
}

impl Pump {
    fn new(cfg: &ChaosConfig, shard: usize) -> Pump {
        let base = cfg.hosts as u32;
        let shards = cfg.shards as u32;
        let host = (base..).find(|h| h % shards == shard as u32).unwrap();
        Pump {
            host,
            seq: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    fn send(&mut self, svc: &FleetService, n: usize) {
        for _ in 0..n {
            if svc.ingest(self.host, 0, self.seq, pump_features()) {
                self.accepted += 1;
            } else {
                self.rejected += 1;
            }
            self.seq += 1;
        }
    }
}

/// Keep a trickle of records flowing into `pump`'s shard until `pred`
/// holds or the deadline passes. Returns whether `pred` held.
fn pump_until(
    svc: &FleetService,
    pump: &mut Pump,
    deadline: Duration,
    mut pred: impl FnMut() -> bool,
) -> bool {
    let t0 = Instant::now();
    while !pred() {
        if t0.elapsed() > deadline {
            return false;
        }
        pump.send(svc, 32);
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Run the full chaos scenario against a live service. See the module
/// docs for the injected faults and asserted invariants.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    assert!(cfg.hosts >= 1 && cfg.shards >= 1);
    let deadline = Duration::from_millis(cfg.deadline_ms);
    let reference = replay::synthetic_detector(cfg.seed);
    let fleet_cfg = FleetConfig {
        shards: cfg.shards,
        queue_capacity: 8192,
        batch: 64,
        recorder_depth: 32,
        restart_backoff_ms: 1,
        restart_backoff_cap_ms: 20,
        stall_timeout_ms: 100,
        rollback_after: 2,
        degrade_after: 4,
        incident_burst: 32,
        incident_per_sec: 50,
        golden_vectors: 128,
        trace_depth: 8192,
    };
    let sink = Arc::new(CollectSink::default());
    let svc = FleetService::start(fleet_cfg, reference.clone(), Arc::clone(&sink) as _);
    let trace = replay::synthetic_trace(8192, cfg.seed ^ 0xc4a05);
    let mut violations: Vec<String> = Vec::new();
    let mut pumps: Vec<Pump> = (0..cfg.shards).map(|s| Pump::new(cfg, s)).collect();
    let mut injected_panic_batches = 0u64;
    let mut injected_stalls = 0u64;
    let mut rejected_swaps = 0u64;
    let mut valid_swaps = 0u64;

    let replay_cfg = ReplayConfig {
        hosts: cfg.hosts,
        records_per_host: cfg.records_per_host,
        rate_per_host: cfg.rate_per_host,
    };
    let rep = std::thread::scope(|scope| {
        let replay_handle = scope.spawn(|| replay::replay(&svc, &trace, &replay_cfg));

        // Let steady-state traffic flow (and the workers' envelopes
        // absorb model-approved activations) before injecting anything.
        std::thread::sleep(Duration::from_millis(100));

        // Scenario 1: a single detector panic — the supervisor must
        // restart the worker and account the abandoned batch.
        svc.failpoints().inject_panics(0, 1);
        injected_panic_batches += 1;
        if !pump_until(&svc, &mut pumps[0], deadline, || {
            svc.snapshot().restarts >= 1
        }) {
            violations.push("no restart observed after injected panic".into());
        }

        // Scenario 2: hot-swap validation. Corrupt candidates (one
        // structural child-reference flip, one semantic threshold flip)
        // must be rejected without moving the epoch; a clean redeploy
        // must pass the strict gate.
        let epoch_before = svc.model_version();
        let mut structural = replay::synthetic_detector(cfg.seed);
        structural.chaos_flip_arena_bit(64 + 17); // left-child reference bit
        if svc.hot_swap_validated(structural, false).is_err() {
            rejected_swaps += 1;
        } else {
            violations.push("structurally corrupt arena accepted for deployment".into());
        }
        let mut semantic = replay::synthetic_detector(cfg.seed);
        semantic.chaos_flip_arena_bit(63); // root threshold high bit
        if svc.hot_swap_validated(semantic, false).is_err() {
            rejected_swaps += 1;
        } else {
            violations.push("semantically corrupt arena accepted for deployment".into());
        }
        if svc.model_version() != epoch_before {
            violations.push("rejected swap moved the model epoch".into());
        }
        let redeploy =
            VmTransitionDetector::from_json(&reference.to_json()).expect("reference round-trips");
        match svc.hot_swap_validated(redeploy, true) {
            Ok(_) => valid_swaps += 1,
            Err(e) => violations.push(format!("clean redeploy rejected: {e}")),
        }

        // Scenario 3: a stalled shard — the watchdog must detect the
        // stale heartbeat and bring in a replacement worker.
        let stall_shard = 1 % cfg.shards;
        svc.failpoints()
            .inject_stall(stall_shard, Duration::from_millis(400));
        injected_stalls += 1;
        if !pump_until(&svc, &mut pumps[stall_shard], deadline, || {
            svc.snapshot().stalls >= 1
        }) {
            violations.push("watchdog never detected the injected stall".into());
        }

        // Scenario 4: queue saturation while the worker is wedged — the
        // burst must be bounded by drop-and-count, never by blocking.
        let sat_shard = 2 % cfg.shards;
        svc.failpoints()
            .inject_stall(sat_shard, Duration::from_millis(300));
        injected_stalls += 1;
        pumps[sat_shard].send(&svc, 1); // arm: next batch consumes the stall
        std::thread::sleep(Duration::from_millis(20));
        let before_rejected = pumps[sat_shard].rejected;
        pumps[sat_shard].send(&svc, 8192 + 4096);
        let burst_rejected_now = pumps[sat_shard].rejected - before_rejected;
        if burst_rejected_now == 0 {
            violations.push("saturation burst overran a wedged shard without drops".into());
        }

        // Scenario 5: panic storm — escalation must roll the model back
        // (restoring the pre-swap fingerprint) and then degrade, at which
        // point envelope verdicts flow instead of records burning.
        let storm_shard = 0;
        svc.failpoints().inject_panics(storm_shard, 64);
        injected_panic_batches += 64;
        if !pump_until(&svc, &mut pumps[storm_shard], deadline, || svc.degraded()) {
            violations.push("panic storm never escalated to degraded mode".into());
        }
        if !pump_until(&svc, &mut pumps[storm_shard], deadline, || {
            svc.snapshot().degraded_verdicts > 0
        }) {
            violations.push("degraded mode produced no envelope verdicts".into());
        }

        // All injections done: disarm, recover, and prove every shard is
        // serving again.
        svc.failpoints().disarm();
        svc.exit_degraded();
        let rep = replay_handle.join().expect("replay panicked");

        let before_batches: Vec<u64> = svc.snapshot().shards.iter().map(|s| s.batches).collect();
        for pump in pumps.iter_mut() {
            pump.send(&svc, cfg.probes_per_shard);
        }
        let recovered = {
            let t0 = Instant::now();
            loop {
                let snap = svc.snapshot();
                let all_advanced = snap
                    .shards
                    .iter()
                    .zip(&before_batches)
                    .all(|(s, &b)| s.batches > b);
                let drained = snap.classified + snap.lost == snap.ingested;
                if all_advanced && drained {
                    break true;
                }
                if t0.elapsed() > deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        };
        if !recovered {
            violations.push(format!(
                "not every shard resumed verdicts within {} ms of disarming",
                cfg.deadline_ms
            ));
        }
        rep
    });

    let snapshot = svc.shutdown();

    // Invariant: exact accounting. Every accepted record classified or
    // lost-with-cause; every rejected ingest in the drop counter.
    let pump_accepted: u64 = pumps.iter().map(|p| p.accepted).sum();
    let pump_rejected: u64 = pumps.iter().map(|p| p.rejected).sum();
    let accepted_total = rep.accepted + pump_accepted;
    let rejected_total = rep.rejected + pump_rejected;
    if snapshot.ingested != accepted_total {
        violations.push(format!(
            "ingested {} != accepted {}",
            snapshot.ingested, accepted_total
        ));
    }
    if snapshot.dropped != rejected_total {
        violations.push(format!(
            "dropped {} != rejected ingests {}",
            snapshot.dropped, rejected_total
        ));
    }
    if snapshot.classified + snapshot.lost != snapshot.ingested {
        violations.push(format!(
            "unaccounted records: classified {} + lost {} != ingested {}",
            snapshot.classified, snapshot.lost, snapshot.ingested
        ));
    }

    // Invariant: the escalation ladder ran. One rollback (restoring the
    // reference fingerprint under a fresh version), one degraded entry.
    if snapshot.rollbacks < 1 {
        violations.push("panic storm triggered no automatic rollback".into());
    }
    if snapshot.degraded_entries < 1 {
        violations.push("panic storm never entered degraded mode".into());
    }
    let rollback_restored_fingerprint =
        snapshot.rollbacks >= 1 && snapshot.model_fingerprint == reference.fingerprint();
    if snapshot.rollbacks >= 1 && !rollback_restored_fingerprint {
        violations.push("rollback did not restore the pre-swap fingerprint".into());
    }
    if snapshot.swap_rejections != rejected_swaps {
        violations.push(format!(
            "swap rejection counter {} != rejected attempts {}",
            snapshot.swap_rejections, rejected_swaps
        ));
    }
    if snapshot.degraded {
        violations.push("service still degraded after exit_degraded".into());
    }

    // Invariant: verdict integrity. Sink delivery is exact up to records
    // that died between their sink call and their counter.
    let verdicts = crate::model::lock_recovering(&sink.verdicts);
    let delivered = verdicts.len() as u64;
    if delivered < snapshot.classified || delivered > snapshot.classified + snapshot.lost {
        violations.push(format!(
            "sink delivered {} verdicts for {} classified (+{} lost)",
            delivered, snapshot.classified, snapshot.lost
        ));
    }
    // Parity: every model-path verdict must match a reference
    // classification of the record's reconstructed features. All three
    // deployed versions (v1 reference, v2 strict redeploy, v3 rollback)
    // classify identically, so one reference covers the whole run.
    let mut parity_checked = 0u64;
    let mut parity_mismatches = 0u64;
    let mut degraded_seen = 0u64;
    for v in verdicts.iter() {
        match v.source {
            VerdictSource::DegradedEnvelope => degraded_seen += 1,
            VerdictSource::Model => {
                let f = if (v.host as usize) < cfg.hosts {
                    trace[(v.host as usize * 7919 + v.seq as usize) % trace.len()]
                } else {
                    pump_features()
                };
                parity_checked += 1;
                if reference.classify(&f) != v.label {
                    parity_mismatches += 1;
                }
            }
        }
    }
    drop(verdicts);
    if parity_mismatches > 0 {
        violations.push(format!(
            "{parity_mismatches} model verdicts diverged from the reference classifier"
        ));
    }
    if degraded_seen != snapshot.degraded_verdicts {
        violations.push(format!(
            "degraded verdicts in sink ({degraded_seen}) != counter ({})",
            snapshot.degraded_verdicts
        ));
    }

    ChaosReport {
        injected_panic_batches,
        injected_stalls,
        rejected_swaps,
        valid_swaps,
        rollback_restored_fingerprint,
        burst_sent: pumps.iter().map(|p| p.accepted + p.rejected).sum(),
        burst_accepted: pump_accepted,
        burst_rejected: pump_rejected,
        parity_checked,
        parity_mismatches,
        degraded_seen,
        replay: rep,
        snapshot,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoints_are_inert_until_armed() {
        let fp = Failpoints::new(2);
        fp.maybe_panic(0); // must not panic
        assert_eq!(fp.take_stall(1), None);
    }

    #[test]
    fn panic_failpoint_fires_exactly_n_times() {
        let fp = Failpoints::new(1);
        fp.inject_panics(0, 2);
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fp.maybe_panic(0)));
            assert!(r.is_err(), "armed failpoint must panic");
        }
        fp.maybe_panic(0); // budget exhausted: no panic
    }

    #[test]
    fn stall_failpoint_is_one_shot_and_disarmable() {
        let fp = Failpoints::new(2);
        fp.inject_stall(1, Duration::from_millis(7));
        assert_eq!(fp.take_stall(0), None, "only the targeted shard stalls");
        assert_eq!(fp.take_stall(1), Some(Duration::from_millis(7)));
        assert_eq!(fp.take_stall(1), None, "one-shot");
        fp.inject_stall(0, Duration::from_millis(3));
        fp.disarm();
        assert_eq!(fp.take_stall(0), None, "disarm clears pending stalls");
    }
}
