//! The fleet service: bounded ingest queues in front of sharded batch
//! classification workers, with atomic model hot-swap and a metrics
//! snapshot exporter.
//!
//! Degradation policy: ingest never blocks. A record whose shard queue is
//! full is dropped and counted (globally and per shard); the shim hot
//! path on the reporting host pays one failed CAS loop at worst. This is
//! the right tradeoff for soft-error telemetry — a lost sample costs a
//! little detection coverage, a blocked VM entry costs guest latency.

use crate::metrics::{Metrics, ServiceSnapshot, ShardSnapshot};
use crate::model::ModelSlot;
use crate::queue::MpmcQueue;
use crate::record::{FleetVerdict, HostId, TelemetryRecord};
use crate::recorder::IncidentDump;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use xentry::{FeatureVec, VmTransitionDetector};

/// Service sizing.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of classification workers (hosts shard as `host % shards`).
    pub shards: usize,
    /// Per-shard queue capacity (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Max records a worker claims per batch.
    pub batch: usize,
    /// Flight-recorder depth per host.
    pub recorder_depth: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 8,
            queue_capacity: 8192,
            batch: 64,
            recorder_depth: 32,
        }
    }
}

/// Receives classification results. Implementations must be cheap and
/// thread-safe: calls come from every shard worker.
pub trait VerdictSink: Send + Sync {
    fn on_verdict(&self, _verdict: &FleetVerdict) {}
    /// Called with the per-host flight-recorder dump on every `Incorrect`
    /// verdict.
    fn on_incident(&self, _dump: &IncidentDump) {}
}

/// Discards verdicts (metrics still count everything).
pub struct NullSink;

impl VerdictSink for NullSink {}

/// Collects verdicts and incidents in memory (tests, small replays).
#[derive(Default)]
pub struct CollectSink {
    pub verdicts: Mutex<Vec<FleetVerdict>>,
    pub incidents: Mutex<Vec<IncidentDump>>,
}

impl VerdictSink for CollectSink {
    fn on_verdict(&self, verdict: &FleetVerdict) {
        self.verdicts.lock().expect("sink poisoned").push(*verdict);
    }

    fn on_incident(&self, dump: &IncidentDump) {
        self.incidents
            .lock()
            .expect("sink poisoned")
            .push(dump.clone());
    }
}

/// State shared between the service handle and its workers.
pub(crate) struct Shared {
    pub(crate) cfg: FleetConfig,
    pub(crate) queues: Vec<MpmcQueue<TelemetryRecord>>,
    pub(crate) model: ModelSlot,
    pub(crate) metrics: Metrics,
    pub(crate) stop: AtomicBool,
    pub(crate) sink: Arc<dyn VerdictSink>,
    start: Instant,
}

impl Shared {
    /// Nanoseconds since service start (monotonic).
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Handle to a running fleet service.
pub struct FleetService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl FleetService {
    /// Start `cfg.shards` workers classifying with `detector` (deployed
    /// as model version 1).
    pub fn start(
        cfg: FleetConfig,
        detector: VmTransitionDetector,
        sink: Arc<dyn VerdictSink>,
    ) -> FleetService {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch >= 1, "need a positive batch size");
        let shared = Arc::new(Shared {
            cfg,
            queues: (0..cfg.shards)
                .map(|_| MpmcQueue::with_capacity(cfg.queue_capacity))
                .collect(),
            model: ModelSlot::new(detector),
            metrics: Metrics::new(cfg.shards),
            stop: AtomicBool::new(false),
            sink,
            start: Instant::now(),
        });
        let workers = (0..cfg.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{shard}"))
                    .spawn(move || crate::shard::run_worker(shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        FleetService { shared, workers }
    }

    /// Report one activation. Non-blocking and allocation-free: returns
    /// `false` (and counts a drop) when the target shard queue is full.
    pub fn ingest(&self, host: HostId, vcpu: u32, seq: u64, features: FeatureVec) -> bool {
        self.ingest_record(TelemetryRecord::new(host, vcpu, seq, features))
    }

    /// [`FleetService::ingest`] with a caller-built record.
    pub fn ingest_record(&self, mut rec: TelemetryRecord) -> bool {
        let shard = rec.host as usize % self.shared.cfg.shards;
        rec.enqueued_ns = self.shared.now_ns();
        match self.shared.queues[shard].push(rec) {
            Ok(()) => {
                self.shared.metrics.ingested.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.shared.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.shards[shard]
                    .dropped
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Atomically deploy a new model mid-flight; returns its version.
    /// In-flight batches finish under the old model; the next batch on
    /// every shard classifies under the new one.
    pub fn hot_swap(&self, detector: VmTransitionDetector) -> u64 {
        let v = self.shared.model.publish(detector);
        self.shared.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Version of the currently deployed model.
    pub fn model_version(&self) -> u64 {
        self.shared.model.epoch()
    }

    /// Racy-consistent metrics snapshot.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let m = &self.shared.metrics;
        let model = self.shared.model.load();
        let uptime_ns = self.shared.now_ns().max(1);
        let classified = m.total_classified();
        ServiceSnapshot {
            uptime_ns,
            model_version: model.version,
            model_fingerprint: model.fingerprint,
            ingested: m.ingested.load(Ordering::Relaxed),
            classified,
            dropped: m.dropped.load(Ordering::Relaxed),
            incorrect: m
                .shards
                .iter()
                .map(|s| s.incorrect.load(Ordering::Relaxed))
                .sum(),
            incidents: m.incidents.load(Ordering::Relaxed),
            swaps: m.swaps.load(Ordering::Relaxed),
            throughput_per_sec: classified as f64 * 1e9 / uptime_ns as f64,
            queue_latency: m.queue_latency.snapshot(),
            classify_latency: m.classify_latency.snapshot(),
            shards: m
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardSnapshot {
                    shard: i,
                    classified: s.classified.load(Ordering::Relaxed),
                    incorrect: s.incorrect.load(Ordering::Relaxed),
                    dropped: s.dropped.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Stop ingesting, drain every queue, join the workers, and return
    /// the final snapshot. Every record accepted before shutdown is
    /// classified.
    pub fn shutdown(mut self) -> ServiceSnapshot {
        self.shared.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            w.join().expect("shard worker panicked");
        }
        self.snapshot()
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
    use xentry::FEATURE_NAMES;

    /// Detector: rt >= ~2*base on vmer 17 is Incorrect.
    fn detector(base: u64) -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        for i in 0..40u64 {
            d.push(Sample::new(
                vec![17, base + i % 10, 5, 3, 2],
                Label::Correct,
            ));
            d.push(Sample::new(
                vec![17, base * 4 + i, 25, 9, 6],
                Label::Incorrect,
            ));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    fn ok_features(base: u64) -> FeatureVec {
        FeatureVec {
            vmer: 17,
            rt: base,
            br: 5,
            rm: 3,
            wm: 2,
        }
    }

    fn bad_features(base: u64) -> FeatureVec {
        FeatureVec {
            vmer: 17,
            rt: base * 4 + 5,
            br: 25,
            rm: 9,
            wm: 6,
        }
    }

    #[test]
    fn classifies_everything_accepted() {
        let sink = Arc::new(CollectSink::default());
        let cfg = FleetConfig {
            shards: 2,
            queue_capacity: 1024,
            batch: 16,
            recorder_depth: 8,
        };
        let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
        let mut accepted = 0u64;
        for host in 0..4u32 {
            for seq in 0..200u64 {
                let f = if seq == 77 {
                    bad_features(100)
                } else {
                    ok_features(100)
                };
                if svc.ingest(host, 0, seq, f) {
                    accepted += 1;
                }
            }
        }
        let snap = svc.shutdown();
        assert_eq!(snap.ingested, accepted);
        assert_eq!(snap.classified, accepted, "shutdown must drain the queues");
        assert_eq!(snap.incorrect, 4, "one planted anomaly per host");
        assert_eq!(snap.incidents, 4);
        assert_eq!(sink.verdicts.lock().unwrap().len(), accepted as usize);
        let incidents = sink.incidents.lock().unwrap();
        assert_eq!(incidents.len(), 4);
        for dump in incidents.iter() {
            assert_eq!(dump.trigger.seq, 77);
            assert_eq!(dump.trigger.label, Label::Incorrect);
            assert!(dump.recent.len() <= 8);
            // The ring holds the activations leading up to the trigger.
            assert_eq!(dump.recent.last().unwrap().seq, 77);
        }
    }

    #[test]
    fn full_queue_drops_are_counted_not_blocking() {
        // One shard, tiny queue, and a service whose worker is saturated:
        // excess ingests must return false immediately.
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 4,
            batch: 4,
            recorder_depth: 4,
        };
        let svc = FleetService::start(cfg, detector(100), Arc::new(NullSink));
        let mut dropped = 0u64;
        let mut accepted = 0u64;
        // Push much faster than one worker can classify at times; with a
        // 4-slot queue some pushes must fail.
        for seq in 0..200_000u64 {
            if svc.ingest(0, 0, seq, ok_features(100)) {
                accepted += 1;
            } else {
                dropped += 1;
            }
        }
        let snap = svc.shutdown();
        assert_eq!(snap.ingested, accepted);
        assert_eq!(snap.dropped, dropped);
        assert_eq!(snap.classified, accepted);
        assert!(
            dropped > 0,
            "a 4-slot queue cannot absorb an unthrottled burst"
        );
        assert_eq!(snap.shards[0].dropped, dropped);
    }

    #[test]
    fn hot_swap_versions_verdicts() {
        let sink = Arc::new(CollectSink::default());
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 1024,
            batch: 8,
            recorder_depth: 4,
        };
        let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
        for seq in 0..50u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        // Wait until the first wave is classified so versions are clean.
        while svc.snapshot().classified < 50 {
            std::thread::yield_now();
        }
        let v2 = svc.hot_swap(detector(100));
        assert_eq!(v2, 2);
        assert_eq!(svc.model_version(), 2);
        for seq in 50..100u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.model_version, 2);
        let verdicts = sink.verdicts.lock().unwrap();
        for v in verdicts.iter() {
            let expect = if v.seq < 50 { 1 } else { 2 };
            assert_eq!(
                v.model_version, expect,
                "seq {} classified under v{}, expected v{}",
                v.seq, v.model_version, expect
            );
        }
    }

    #[test]
    fn snapshot_reports_latency_histograms() {
        let cfg = FleetConfig {
            shards: 2,
            queue_capacity: 256,
            batch: 8,
            recorder_depth: 4,
        };
        let svc = FleetService::start(cfg, detector(100), Arc::new(NullSink));
        for seq in 0..500u64 {
            svc.ingest((seq % 5) as u32, 0, seq, ok_features(100));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.queue_latency.count, snap.classified);
        assert_eq!(snap.classify_latency.count, snap.classified);
        assert!(snap.queue_latency.p99 >= snap.queue_latency.p50);
        assert!(snap.throughput_per_sec > 0.0);
    }
}
