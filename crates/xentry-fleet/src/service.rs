//! The fleet service: bounded ingest queues in front of sharded batch
//! classification workers, with atomic model hot-swap and a metrics
//! snapshot exporter.
//!
//! Degradation policy: ingest never blocks. A record whose shard queue is
//! full is dropped and counted (globally and per shard); the shim hot
//! path on the reporting host pays one failed CAS loop at worst. This is
//! the right tradeoff for soft-error telemetry — a lost sample costs a
//! little detection coverage, a blocked VM entry costs guest latency.
//!
//! Fault policy (see [`crate::supervisor`]): workers run supervised.
//! A panicking worker is restarted with capped backoff and its abandoned
//! in-flight records are counted as `lost`; a stalled worker is
//! superseded by the heartbeat watchdog. Repeated panics escalate to an
//! automatic model rollback and then to degraded mode, where workers
//! classify with self-trained runtime envelopes (verdicts tagged
//! [`VerdictSource::DegradedEnvelope`]) instead of silently dropping
//! records.
//!
//! [`VerdictSource::DegradedEnvelope`]: crate::record::VerdictSource

use crate::chaos::Failpoints;
use crate::metrics::{Metrics, ServiceSnapshot, ShardSnapshot};
use crate::model::{lock_recovering, GoldenSet, ModelSlot, SwapError};
use crate::queue::MpmcQueue;
use crate::record::{FleetVerdict, HostId, TelemetryRecord};
use crate::recorder::IncidentDump;
use crate::supervisor::Supervision;
use crate::telemetry::TelemetryServer;
use crate::trace::{SpanKind, Tracer};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use xentry::{FeatureVec, VmTransitionDetector};

/// Service sizing and fault-tolerance policy.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of classification workers (hosts shard as `host % shards`).
    pub shards: usize,
    /// Per-shard queue capacity (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Max records a worker claims per batch.
    pub batch: usize,
    /// Flight-recorder depth per host.
    pub recorder_depth: usize,
    /// Base restart delay after a worker panic; doubles per consecutive
    /// panic up to `restart_backoff_cap_ms`.
    pub restart_backoff_ms: u64,
    pub restart_backoff_cap_ms: u64,
    /// Heartbeat age after which the watchdog declares a shard stalled
    /// and spawns a replacement worker. 0 disables the watchdog.
    pub stall_timeout_ms: u64,
    /// Consecutive panics on one shard before the supervisor rolls the
    /// model back to the previous epoch (once per epoch). 0 disables.
    pub rollback_after: u32,
    /// Consecutive panics on one shard before the service enters
    /// degraded (envelope-fallback) mode. 0 disables.
    pub degrade_after: u32,
    /// Incident-dump rate limit per host: dumps allowed back-to-back.
    /// 0 disables limiting.
    pub incident_burst: u64,
    /// Incident-dump refill rate per host, dumps/second.
    pub incident_per_sec: u64,
    /// Golden canary vectors captured at start for swap validation.
    pub golden_vectors: usize,
    /// Flight-trace ring depth per lane (a worker lane and an ingest
    /// lane per shard plus one control lane; rounded up to a power of
    /// two). Shard queues are FIFO, so the newest-retained ingest spans
    /// and the newest-retained verdict spans always overlap regardless
    /// of depth; the default keeps each lane's ring small enough to
    /// stay cache-resident on its writer (the dominant term of the
    /// always-on tracing cost) while retaining thousands of records of
    /// context per shard for incident dumps.
    /// 0 disables tracing entirely (no rings, ids stay 0).
    pub trace_depth: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 8,
            queue_capacity: 8192,
            batch: 64,
            recorder_depth: 32,
            restart_backoff_ms: 1,
            restart_backoff_cap_ms: 100,
            stall_timeout_ms: 500,
            rollback_after: 2,
            degrade_after: 4,
            incident_burst: 32,
            incident_per_sec: 10,
            golden_vectors: 128,
            trace_depth: 8192,
        }
    }
}

/// Receives classification results. Implementations must be cheap and
/// thread-safe: calls come from every shard worker. A sink that panics
/// does not take the service down — the supervisor restarts the worker
/// and counts the abandoned batch as lost.
pub trait VerdictSink: Send + Sync {
    fn on_verdict(&self, _verdict: &FleetVerdict) {}
    /// Called with the per-host flight-recorder dump on every `Incorrect`
    /// verdict (minus rate-limited suppressions).
    fn on_incident(&self, _dump: &IncidentDump) {}
}

/// Discards verdicts (metrics still count everything).
pub struct NullSink;

impl VerdictSink for NullSink {}

/// Collects verdicts and incidents in memory (tests, small replays).
/// Locking is poison-tolerant: a panic elsewhere in a worker never
/// wedges collection.
#[derive(Default)]
pub struct CollectSink {
    pub verdicts: Mutex<Vec<FleetVerdict>>,
    pub incidents: Mutex<Vec<IncidentDump>>,
}

impl VerdictSink for CollectSink {
    fn on_verdict(&self, verdict: &FleetVerdict) {
        lock_recovering(&self.verdicts).push(*verdict);
    }

    fn on_incident(&self, dump: &IncidentDump) {
        lock_recovering(&self.incidents).push(dump.clone());
    }
}

/// State shared between the service handle and its workers.
pub(crate) struct Shared {
    pub(crate) cfg: FleetConfig,
    pub(crate) queues: Vec<MpmcQueue<TelemetryRecord>>,
    pub(crate) model: ModelSlot,
    /// Canary vectors + expected labels for validated swaps; re-captured
    /// whenever the deployed model legitimately changes.
    pub(crate) golden: Mutex<GoldenSet>,
    pub(crate) metrics: Metrics,
    pub(crate) supervision: Supervision,
    pub(crate) failpoints: Failpoints,
    pub(crate) stop: AtomicBool,
    pub(crate) sink: Arc<dyn VerdictSink>,
    /// Flight tracer: one ring per shard plus a control lane. Always
    /// present; inert (zero rings, zero cost) when `trace_depth` is 0.
    pub(crate) tracer: Arc<Tracer>,
    start: Instant,
}

impl Shared {
    /// Nanoseconds since service start (monotonic).
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Re-capture the golden set's expected labels under the currently
    /// deployed model (after a relaxed-gate swap or a rollback).
    pub(crate) fn refresh_golden_from_current(&self) {
        let model = self.model.load();
        let mut golden = lock_recovering(&self.golden);
        *golden = golden.recapture(&model.detector);
    }

    /// True while the service is serving envelope-fallback verdicts.
    pub(crate) fn degraded(&self) -> bool {
        self.supervision.degraded.load(Ordering::Acquire)
    }

    /// Racy-consistent metrics snapshot. Lives on `Shared` (not the
    /// service handle) so the telemetry scrape endpoint can build one
    /// from its own `Arc<Shared>` without holding the handle.
    pub(crate) fn snapshot(&self) -> ServiceSnapshot {
        let m = &self.metrics;
        let model = self.model.load();
        let uptime_ns = self.now_ns().max(1);
        let classified = m.total_classified();
        ServiceSnapshot {
            uptime_ns,
            model_version: model.version,
            model_fingerprint: model.fingerprint,
            model_arena_bytes: model.detector.arena_bytes() as u64,
            model_nr_splits: model.detector.nr_splits() as u64,
            model_hot_prefix_bytes: model.detector.hot_prefix_bytes() as u64,
            ingested: m.ingested.load(Ordering::Relaxed),
            classified,
            dropped: m.dropped.load(Ordering::Relaxed),
            lost: m.total_lost(),
            incorrect: m
                .shards
                .iter()
                .map(|s| s.incorrect.load(Ordering::Relaxed))
                .sum(),
            incidents: m.incidents.load(Ordering::Relaxed),
            suppressed_incidents: m.suppressed_incidents.load(Ordering::Relaxed),
            swaps: m.swaps.load(Ordering::Relaxed),
            swap_rejections: m.swap_rejections.load(Ordering::Relaxed),
            rollbacks: m.rollbacks.load(Ordering::Relaxed),
            restarts: m.restarts.load(Ordering::Relaxed),
            stalls: m.stalls.load(Ordering::Relaxed),
            degraded: self.degraded(),
            degraded_entries: m.degraded_entries.load(Ordering::Relaxed),
            degraded_verdicts: m.degraded_verdicts.load(Ordering::Relaxed),
            throughput_per_sec: classified as f64 * 1e9 / uptime_ns as f64,
            trace_events: self.tracer.total_events(),
            trace_dropped: self.tracer.total_dropped(),
            queue_latency: m.queue_latency.snapshot(),
            classify_latency: m.classify_latency.snapshot(),
            epoch_verdicts: m.epoch_verdicts_sorted(),
            shards: m
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardSnapshot {
                    shard: i,
                    classified: s.classified.load(Ordering::Relaxed),
                    incorrect: s.incorrect.load(Ordering::Relaxed),
                    dropped: s.dropped.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                    lost: s.lost.load(Ordering::Relaxed),
                    restarts: s.restarts.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Deterministic canary probes spanning the feature space: the synthetic
/// VMER profiles plus order-of-magnitude outliers on every counter, so a
/// corrupted arena has to survive both subtrees of most splits to slip
/// past validation.
fn golden_probe_vectors(n: usize) -> Vec<FeatureVec> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let vmers = [17u16, 32, 40, 8, 0, 63];
    (0..n.max(16))
        .map(|_| {
            let vmer = vmers[(next() % vmers.len() as u64) as usize];
            let mag = 1u64 << (next() % 11);
            FeatureVec {
                vmer,
                rt: 30 + next() % (60 * mag),
                br: 3 + next() % (10 * mag),
                rm: 4 + next() % (20 * mag),
                wm: 2 + next() % (12 * mag),
            }
        })
        .collect()
}

/// Handle to a running fleet service.
pub struct FleetService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl FleetService {
    /// Start `cfg.shards` supervised workers classifying with `detector`
    /// (deployed as model version 1), plus the heartbeat watchdog.
    pub fn start(
        cfg: FleetConfig,
        detector: VmTransitionDetector,
        sink: Arc<dyn VerdictSink>,
    ) -> FleetService {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch >= 1, "need a positive batch size");
        let golden = GoldenSet::capture(&detector, golden_probe_vectors(cfg.golden_vectors));
        let shared = Arc::new(Shared {
            cfg,
            queues: (0..cfg.shards)
                .map(|_| MpmcQueue::with_capacity(cfg.queue_capacity))
                .collect(),
            model: ModelSlot::new(detector),
            golden: Mutex::new(golden),
            metrics: Metrics::new(cfg.shards),
            supervision: Supervision::new(cfg.shards),
            failpoints: Failpoints::new(cfg.shards),
            stop: AtomicBool::new(false),
            sink,
            tracer: Arc::new(Tracer::new(cfg.shards, cfg.trace_depth)),
            start: Instant::now(),
        });
        let mut workers: Vec<JoinHandle<()>> = (0..cfg.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{shard}"))
                    .spawn(move || crate::supervisor::run_supervised(shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        let wd_shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name("fleet-watchdog".into())
                .spawn(move || crate::supervisor::run_watchdog(wd_shared))
                .expect("spawn watchdog"),
        );
        FleetService { shared, workers }
    }

    /// Report one activation. Non-blocking and allocation-free: returns
    /// `false` (and counts a drop) when the target shard queue is full.
    pub fn ingest(&self, host: HostId, vcpu: u32, seq: u64, features: FeatureVec) -> bool {
        self.ingest_record(TelemetryRecord::new(host, vcpu, seq, features))
    }

    /// [`FleetService::ingest`] with a caller-built record.
    pub fn ingest_record(&self, mut rec: TelemetryRecord) -> bool {
        let shard = rec.host as usize % self.shared.cfg.shards;
        rec.enqueued_ns = self.shared.now_ns();
        rec.trace_id = self.shared.tracer.next_id(shard);
        match self.shared.queues[shard].push(rec) {
            Ok(()) => {
                self.shared.metrics.ingested.fetch_add(1, Ordering::Relaxed);
                self.shared.tracer.record(
                    self.shared.tracer.ingest_lane(shard),
                    SpanKind::Ingest,
                    rec.enqueued_ns,
                    0,
                    rec.trace_id,
                    rec.host as u64,
                );
                true
            }
            Err(_) => {
                let nth = self.shared.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.shards[shard]
                    .dropped
                    .fetch_add(1, Ordering::Relaxed);
                // Drop spans are sampled 1-in-64: a saturated queue sheds
                // records far faster than it classifies them, and one span
                // per rejection would evict the accepted records' ingest
                // spans from the ring. Exact drop counts live in the
                // metrics; the ring only needs evidence of the shedding.
                if nth.is_multiple_of(64) {
                    self.shared.tracer.record(
                        self.shared.tracer.ingest_lane(shard),
                        SpanKind::Drop,
                        rec.enqueued_ns,
                        0,
                        rec.trace_id,
                        rec.host as u64,
                    );
                }
                false
            }
        }
    }

    /// Atomically deploy a new model mid-flight; returns its version.
    /// In-flight batches finish under the old model; the next batch on
    /// every shard classifies under the new one.
    ///
    /// This path trusts the caller — the candidate must come straight
    /// from `VmTransitionDetector::new`. Anything loaded from disk or a
    /// network belongs behind [`FleetService::hot_swap_validated`].
    pub fn hot_swap(&self, detector: VmTransitionDetector) -> u64 {
        let v = self.shared.model.publish(detector);
        self.shared.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        self.shared.refresh_golden_from_current();
        self.shared
            .tracer
            .record_control(SpanKind::HotSwap, self.shared.now_ns(), v);
        v
    }

    /// Validate `detector` (structural arena integrity plus canary
    /// classification of the golden set — strict label parity with the
    /// incumbent when `require_parity`), then deploy it. A rejected
    /// candidate never reaches the slot: the incumbent keeps serving,
    /// which *is* the rollback, and the rejection is counted.
    pub fn hot_swap_validated(
        &self,
        detector: VmTransitionDetector,
        require_parity: bool,
    ) -> Result<u64, SwapError> {
        let mut golden = lock_recovering(&self.shared.golden);
        match self
            .shared
            .model
            .publish_validated(detector, &golden, require_parity)
        {
            Ok(v) => {
                let model = self.shared.model.load();
                *golden = golden.recapture(&model.detector);
                self.shared.metrics.swaps.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .tracer
                    .record_control(SpanKind::HotSwap, self.shared.now_ns(), v);
                Ok(v)
            }
            Err(e) => {
                self.shared
                    .metrics
                    .swap_rejections
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.tracer.record_control(
                    SpanKind::SwapRejected,
                    self.shared.now_ns(),
                    self.shared.model.epoch(),
                );
                Err(e)
            }
        }
    }

    /// Roll back to the previous epoch's model (republished under a fresh
    /// version). Returns the new version, or `None` when nothing is
    /// retained. The supervisor calls the same slot operation
    /// automatically after `rollback_after` consecutive panics.
    pub fn rollback_model(&self) -> Option<u64> {
        let v = self.shared.model.rollback()?;
        self.shared
            .metrics
            .rollbacks
            .fetch_add(1, Ordering::Relaxed);
        self.shared.refresh_golden_from_current();
        self.shared
            .tracer
            .record_control(SpanKind::Rollback, self.shared.now_ns(), v);
        Some(v)
    }

    /// Version of the currently deployed model.
    pub fn model_version(&self) -> u64 {
        self.shared.model.epoch()
    }

    /// Fingerprint of the currently deployed model.
    pub fn model_fingerprint(&self) -> u64 {
        self.shared.model.load().fingerprint
    }

    /// Identity of the canary gate deployments are validated against.
    pub fn golden_fingerprint(&self) -> u64 {
        lock_recovering(&self.shared.golden).fingerprint()
    }

    /// True while the service is serving envelope-fallback verdicts.
    pub fn degraded(&self) -> bool {
        self.shared.supervision.degraded.load(Ordering::Acquire)
    }

    /// Operator acknowledgment: leave degraded mode and reset the
    /// consecutive-panic counters (the next panic storm can re-enter).
    pub fn exit_degraded(&self) {
        for s in &self.shared.supervision.shards {
            s.consecutive_panics.store(0, Ordering::Relaxed);
        }
        let was_degraded = self
            .shared
            .supervision
            .degraded
            .swap(false, Ordering::Release);
        if was_degraded {
            self.shared
                .tracer
                .record_control(SpanKind::Recover, self.shared.now_ns(), 0);
        }
    }

    /// Chaos-testing failpoints (inert until armed).
    pub fn failpoints(&self) -> &Failpoints {
        &self.shared.failpoints
    }

    /// The flight tracer (trace-id source + Chrome export). Returned as
    /// an `Arc` so callers can export after [`FleetService::shutdown`]
    /// consumes the handle — post-join the rings are quiescent and the
    /// export is exact.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Start the telemetry scrape endpoint (`/metrics`, `/healthz`,
    /// `/trace`) on `addr`; port 0 picks a free port. The server lives
    /// until its handle is dropped or [`TelemetryServer::shutdown`] —
    /// it holds its own `Arc` to the shared state, so it may outlive
    /// this service handle (scraping a shut-down service just serves
    /// the final counters).
    pub fn serve_telemetry(&self, addr: impl ToSocketAddrs) -> std::io::Result<TelemetryServer> {
        TelemetryServer::start(Arc::clone(&self.shared), addr)
    }

    /// Racy-consistent metrics snapshot.
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.shared.snapshot()
    }

    /// Stop ingesting, drain every queue, join the workers, and return
    /// the final snapshot. Every record accepted before shutdown is
    /// either classified or (if a worker panicked mid-batch) counted in
    /// `lost`: `ingested == classified + lost` holds on the result.
    pub fn shutdown(mut self) -> ServiceSnapshot {
        self.shared.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            w.join().expect("supervisor thread panicked");
        }
        self.snapshot()
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VerdictSource;
    use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
    use std::sync::atomic::AtomicU64;
    use xentry::FEATURE_NAMES;

    /// Detector: rt >= ~2*base on vmer 17 is Incorrect.
    fn detector(base: u64) -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        for i in 0..40u64 {
            d.push(Sample::new(
                vec![17, base + i % 10, 5, 3, 2],
                Label::Correct,
            ));
            d.push(Sample::new(
                vec![17, base * 4 + i, 25, 9, 6],
                Label::Incorrect,
            ));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    fn ok_features(base: u64) -> FeatureVec {
        FeatureVec {
            vmer: 17,
            rt: base,
            br: 5,
            rm: 3,
            wm: 2,
        }
    }

    fn bad_features(base: u64) -> FeatureVec {
        FeatureVec {
            vmer: 17,
            rt: base * 4 + 5,
            br: 25,
            rm: 9,
            wm: 6,
        }
    }

    #[test]
    fn classifies_everything_accepted() {
        let sink = Arc::new(CollectSink::default());
        let cfg = FleetConfig {
            shards: 2,
            queue_capacity: 1024,
            batch: 16,
            recorder_depth: 8,
            ..FleetConfig::default()
        };
        let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
        let mut accepted = 0u64;
        for host in 0..4u32 {
            for seq in 0..200u64 {
                let f = if seq == 77 {
                    bad_features(100)
                } else {
                    ok_features(100)
                };
                if svc.ingest(host, 0, seq, f) {
                    accepted += 1;
                }
            }
        }
        let snap = svc.shutdown();
        assert_eq!(snap.ingested, accepted);
        assert_eq!(snap.classified, accepted, "shutdown must drain the queues");
        assert_eq!(snap.lost, 0);
        assert_eq!(snap.incorrect, 4, "one planted anomaly per host");
        assert_eq!(snap.incidents, 4);
        assert_eq!(snap.suppressed_incidents, 0);
        assert!(!snap.degraded);
        let verdicts = sink.verdicts.lock().unwrap();
        assert_eq!(verdicts.len(), accepted as usize);
        assert!(verdicts.iter().all(|v| v.source == VerdictSource::Model));
        drop(verdicts);
        let incidents = sink.incidents.lock().unwrap();
        assert_eq!(incidents.len(), 4);
        for dump in incidents.iter() {
            assert_eq!(dump.trigger.seq, 77);
            assert_eq!(dump.trigger.label, Label::Incorrect);
            assert!(dump.recent.len() <= 8);
            // The ring holds the activations leading up to the trigger.
            assert_eq!(dump.recent.last().unwrap().seq, 77);
        }
    }

    #[test]
    fn full_queue_drops_are_counted_not_blocking() {
        // One shard, tiny queue, and a service whose worker is saturated:
        // excess ingests must return false immediately.
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 4,
            batch: 4,
            recorder_depth: 4,
            ..FleetConfig::default()
        };
        let svc = FleetService::start(cfg, detector(100), Arc::new(NullSink));
        let mut dropped = 0u64;
        let mut accepted = 0u64;
        // Push much faster than one worker can classify at times; with a
        // 4-slot queue some pushes must fail.
        for seq in 0..200_000u64 {
            if svc.ingest(0, 0, seq, ok_features(100)) {
                accepted += 1;
            } else {
                dropped += 1;
            }
        }
        let snap = svc.shutdown();
        assert_eq!(snap.ingested, accepted);
        assert_eq!(snap.dropped, dropped);
        assert_eq!(snap.classified, accepted);
        assert!(
            dropped > 0,
            "a 4-slot queue cannot absorb an unthrottled burst"
        );
        assert_eq!(snap.shards[0].dropped, dropped);
    }

    #[test]
    fn hot_swap_versions_verdicts() {
        let sink = Arc::new(CollectSink::default());
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 1024,
            batch: 8,
            recorder_depth: 4,
            ..FleetConfig::default()
        };
        let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
        for seq in 0..50u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        // Wait until the first wave is classified so versions are clean.
        while svc.snapshot().classified < 50 {
            std::thread::yield_now();
        }
        let v2 = svc.hot_swap(detector(100));
        assert_eq!(v2, 2);
        assert_eq!(svc.model_version(), 2);
        for seq in 50..100u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.model_version, 2);
        let verdicts = sink.verdicts.lock().unwrap();
        for v in verdicts.iter() {
            let expect = if v.seq < 50 { 1 } else { 2 };
            assert_eq!(
                v.model_version, expect,
                "seq {} classified under v{}, expected v{}",
                v.seq, v.model_version, expect
            );
        }
    }

    #[test]
    fn snapshot_reports_latency_histograms() {
        let cfg = FleetConfig {
            shards: 2,
            queue_capacity: 256,
            batch: 8,
            recorder_depth: 4,
            ..FleetConfig::default()
        };
        let svc = FleetService::start(cfg, detector(100), Arc::new(NullSink));
        for seq in 0..500u64 {
            svc.ingest((seq % 5) as u32, 0, seq, ok_features(100));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.queue_latency.count, snap.classified);
        assert_eq!(snap.classify_latency.count, snap.classified);
        assert!(snap.queue_latency.p99 >= snap.queue_latency.p50);
        assert!(snap.throughput_per_sec > 0.0);
    }

    #[test]
    fn validated_swap_counts_rejections_and_keeps_serving() {
        let svc = FleetService::start(
            FleetConfig {
                shards: 1,
                queue_capacity: 256,
                batch: 8,
                recorder_depth: 4,
                ..FleetConfig::default()
            },
            detector(100),
            Arc::new(NullSink),
        );
        let golden_before = svc.golden_fingerprint();

        // Structurally corrupt candidate: rejected, slot untouched.
        let mut corrupt = detector(100);
        corrupt.chaos_flip_arena_bit(64 + 20);
        assert!(svc.hot_swap_validated(corrupt, false).is_err());
        assert_eq!(svc.model_version(), 1);
        assert_eq!(svc.golden_fingerprint(), golden_before);

        // Clean redeploy passes the strict gate and bumps the version.
        let redeploy = VmTransitionDetector::from_json(&detector(100).to_json()).unwrap();
        assert_eq!(svc.hot_swap_validated(redeploy, true).unwrap(), 2);

        // Service still classifies after all of the above.
        for seq in 0..50u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.classified, 50);
        assert_eq!(snap.swap_rejections, 1);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.model_version, 2);
    }

    #[test]
    fn profiled_relayout_swaps_validated_and_updates_gauges() {
        let det = detector(100);
        let svc = FleetService::start(
            FleetConfig {
                shards: 1,
                queue_capacity: 256,
                batch: 8,
                recorder_depth: 4,
                ..FleetConfig::default()
            },
            det.clone(),
            Arc::new(NullSink),
        );
        let before = svc.snapshot();
        assert_eq!(before.model_arena_bytes, det.arena_bytes() as u64);
        assert_eq!(before.model_nr_splits, det.nr_splits() as u64);
        // Unprofiled layout claims nothing: hot prefix == whole arena.
        assert_eq!(before.model_hot_prefix_bytes, before.model_arena_bytes);

        // Harvest a skewed profile (mostly healthy traffic) and publish
        // the hot-first relayout through the strict-parity gate — same
        // tree, same fingerprint, so it must pass by construction.
        let traffic: Vec<FeatureVec> = (0..200)
            .map(|i| {
                if i % 10 == 9 {
                    bad_features(100)
                } else {
                    ok_features(100 + i % 7)
                }
            })
            .collect();
        let profiled = det.with_profiled_layout(&det.harvest_profile(&traffic));
        assert_eq!(svc.hot_swap_validated(profiled, true).unwrap(), 2);

        for seq in 0..50u64 {
            assert!(svc.ingest(0, 0, seq, ok_features(100)));
        }
        let snap = svc.shutdown();
        assert_eq!(snap.classified, 50);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.swap_rejections, 0);
        assert_eq!(snap.model_fingerprint, det.fingerprint());
        assert_eq!(snap.model_arena_bytes, before.model_arena_bytes);
        // The profiled layout's hot prefix is a (non-empty) subset of
        // the arena, and the gauge tracks the deployed model.
        assert!(snap.model_hot_prefix_bytes > 0);
        assert!(snap.model_hot_prefix_bytes <= snap.model_arena_bytes);
    }

    #[test]
    fn rollback_restores_previous_fingerprint() {
        let d1 = detector(100);
        let d2 = detector(900);
        let f1 = d1.fingerprint();
        let svc = FleetService::start(
            FleetConfig {
                shards: 1,
                queue_capacity: 256,
                batch: 8,
                recorder_depth: 4,
                ..FleetConfig::default()
            },
            d1,
            Arc::new(NullSink),
        );
        assert_eq!(svc.rollback_model(), None, "nothing to roll back yet");
        svc.hot_swap(d2);
        assert_eq!(svc.rollback_model(), Some(3));
        assert_eq!(svc.model_fingerprint(), f1);
        let snap = svc.shutdown();
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.model_version, 3);
    }

    /// Panics on the first verdict it sees, then collects normally.
    struct PanicOnceSink {
        panicked: AtomicBool,
        seen: AtomicU64,
    }

    impl VerdictSink for PanicOnceSink {
        fn on_verdict(&self, _v: &FleetVerdict) {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("sink exploded on purpose");
            }
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn panicking_sink_cannot_take_down_the_service() {
        let sink = Arc::new(PanicOnceSink {
            panicked: AtomicBool::new(false),
            seen: AtomicU64::new(0),
        });
        let cfg = FleetConfig {
            shards: 1,
            queue_capacity: 2048,
            batch: 16,
            recorder_depth: 4,
            restart_backoff_ms: 1,
            restart_backoff_cap_ms: 4,
            ..FleetConfig::default()
        };
        let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
        let mut accepted = 0u64;
        for seq in 0..1000u64 {
            if svc.ingest(0, 0, seq, ok_features(100)) {
                accepted += 1;
            }
        }
        let snap = svc.shutdown();
        assert_eq!(snap.ingested, accepted);
        assert_eq!(snap.restarts, 1, "exactly one panic, one restart");
        assert!(snap.lost >= 1, "the abandoned batch must be accounted");
        assert!(snap.lost <= cfg.batch as u64);
        assert_eq!(
            snap.classified + snap.lost,
            accepted,
            "no record may vanish unaccounted"
        );
        assert_eq!(sink.seen.load(Ordering::Relaxed), snap.classified);
    }

    #[test]
    fn collect_sink_recovers_from_poisoned_lock() {
        let sink = Arc::new(CollectSink::default());
        let sink2 = Arc::clone(&sink);
        // Poison the verdict mutex the way a panicking consumer would.
        let _ = std::thread::spawn(move || {
            let _guard = sink2.verdicts.lock().unwrap();
            panic!("poison the sink");
        })
        .join();
        assert!(sink.verdicts.is_poisoned());
        sink.on_verdict(&FleetVerdict {
            host: 1,
            vcpu: 0,
            seq: 1,
            label: Label::Correct,
            model_version: 1,
            model_fingerprint: 0,
            source: VerdictSource::Model,
            trace_id: 0,
        });
        assert_eq!(lock_recovering(&sink.verdicts).len(), 1);
    }
}
