//! Atomic model hot-swap.
//!
//! The service must be able to load a newly trained `detector.json`
//! mid-flight without pausing classification. The design is an epoch
//! counter over a mutex-guarded `Arc`:
//!
//! * publishing a model takes the mutex (cold path, once per swap),
//!   replaces the `Arc`, then bumps the epoch with `Release`;
//! * every shard worker keeps a [`ModelCache`] — a clone of the `Arc`
//!   plus the epoch it was read at — and revalidates with a single
//!   `Acquire` load per batch. The mutex is only touched when the epoch
//!   actually moved, so the steady-state hot path never contends.
//!
//! Readers therefore see either the old or the new model, never a torn
//! state, and every verdict records which version classified it.
//!
//! The compiled inference arena and the cached fingerprint both live
//! *inside* [`VmTransitionDetector`] (built by its constructor), so a
//! swap atomically replaces tree, arena and fingerprint together — a
//! reader can never pair an old arena with a new fingerprint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xentry::VmTransitionDetector;

/// A deployed detector plus its identity.
#[derive(Debug)]
pub struct VersionedModel {
    /// Monotone version: 1 for the model the service started with, +1 per
    /// hot swap.
    pub version: u64,
    /// [`VmTransitionDetector::fingerprint`] of the tree.
    pub fingerprint: u64,
    pub detector: VmTransitionDetector,
}

/// Shared slot holding the current model.
pub struct ModelSlot {
    epoch: AtomicU64,
    current: Mutex<Arc<VersionedModel>>,
}

impl ModelSlot {
    /// Install the initial model as version 1.
    pub fn new(detector: VmTransitionDetector) -> ModelSlot {
        let vm = Arc::new(VersionedModel {
            version: 1,
            fingerprint: detector.fingerprint(),
            detector,
        });
        ModelSlot {
            epoch: AtomicU64::new(1),
            current: Mutex::new(vm),
        }
    }

    /// Publish a new model; returns its version. Callers racing here
    /// serialize on the mutex; readers are never blocked.
    pub fn publish(&self, detector: VmTransitionDetector) -> u64 {
        let mut guard = self.current.lock().expect("model slot poisoned");
        let version = guard.version + 1;
        *guard = Arc::new(VersionedModel {
            version,
            fingerprint: detector.fingerprint(),
            detector,
        });
        // Release pairs with the Acquire in `epoch()`: a reader that sees
        // the new epoch will also see the new Arc through the mutex.
        self.epoch.store(version, Ordering::Release);
        version
    }

    /// Current epoch (== current model version).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current model handle (cold path).
    pub fn load(&self) -> Arc<VersionedModel> {
        Arc::clone(&self.current.lock().expect("model slot poisoned"))
    }
}

/// Per-worker cached handle, revalidated with one atomic load.
pub struct ModelCache {
    epoch: u64,
    model: Arc<VersionedModel>,
}

impl ModelCache {
    pub fn new(slot: &ModelSlot) -> ModelCache {
        ModelCache {
            epoch: slot.epoch(),
            model: slot.load(),
        }
    }

    /// The current model; refreshes from `slot` only when the epoch moved.
    pub fn get(&mut self, slot: &ModelSlot) -> &Arc<VersionedModel> {
        let e = slot.epoch();
        if e != self.epoch {
            self.model = slot.load();
            self.epoch = e;
        }
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
    use xentry::{FeatureVec, FEATURE_NAMES};

    fn detector(split: u64) -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        for i in 0..40u64 {
            d.push(Sample::new(
                vec![17, split / 2 + i % 10, 5, 3, 2],
                Label::Correct,
            ));
            d.push(Sample::new(
                vec![17, split * 2 + i, 25, 9, 6],
                Label::Incorrect,
            ));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    #[test]
    fn publish_bumps_version_and_swaps_tree() {
        let slot = ModelSlot::new(detector(100));
        let mut cache = ModelCache::new(&slot);
        assert_eq!(cache.get(&slot).version, 1);
        let f1 = cache.get(&slot).fingerprint;

        let v = slot.publish(detector(1000));
        assert_eq!(v, 2);
        let m = cache.get(&slot);
        assert_eq!(m.version, 2);
        assert_ne!(
            m.fingerprint, f1,
            "different tree must fingerprint differently"
        );
    }

    #[test]
    fn cache_refreshes_only_on_epoch_change() {
        let slot = ModelSlot::new(detector(100));
        let mut cache = ModelCache::new(&slot);
        let p1 = Arc::as_ptr(cache.get(&slot));
        let p2 = Arc::as_ptr(cache.get(&slot));
        assert_eq!(p1, p2, "no swap: cache must hand back the same Arc");
        slot.publish(detector(500));
        let p3 = Arc::as_ptr(cache.get(&slot));
        assert_ne!(p1, p3);
    }

    #[test]
    fn concurrent_readers_see_consistent_versions() {
        let slot = Arc::new(ModelSlot::new(detector(100)));
        let f = FeatureVec {
            vmer: 17,
            rt: 60,
            br: 5,
            rm: 3,
            wm: 2,
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    let mut cache = ModelCache::new(&slot);
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let m = cache.get(&slot);
                        assert!(m.version >= last, "versions must be monotone per reader");
                        last = m.version;
                        // The handle must always be a complete model.
                        let _ = m.detector.classify(&f);
                    }
                });
            }
            let slot2 = Arc::clone(&slot);
            s.spawn(move || {
                for i in 0..20 {
                    slot2.publish(detector(100 + i * 37));
                }
            });
        });
        assert_eq!(slot.epoch(), 21);
    }
}
