//! Atomic model hot-swap, with deploy-time validation and rollback.
//!
//! The service must be able to load a newly trained `detector.json`
//! mid-flight without pausing classification. The design is an epoch
//! counter over a mutex-guarded `Arc`:
//!
//! * publishing a model takes the mutex (cold path, once per swap),
//!   replaces the `Arc`, then bumps the epoch with `Release`;
//! * every shard worker keeps a [`ModelCache`] — a clone of the `Arc`
//!   plus the epoch it was read at — and revalidates with a single
//!   `Acquire` load per batch. The mutex is only touched when the epoch
//!   actually moved, so the steady-state hot path never contends.
//!
//! Readers therefore see either the old or the new model, never a torn
//! state, and every verdict records which version classified it.
//!
//! The compiled inference arena and the cached fingerprint both live
//! *inside* [`VmTransitionDetector`] (built by its constructor), so a
//! swap atomically replaces tree, arena and fingerprint together — a
//! reader can never pair an old arena with a new fingerprint.
//!
//! Validation gates ([`GoldenSet`], [`ModelSlot::publish_validated`]):
//! because the shard hot path classifies through *unchecked* arena
//! walkers, a corrupted candidate must never reach the slot. A validated
//! publish runs (1) the structural arena check
//! ([`VmTransitionDetector::validate`]) and (2) a canary classification
//! of a fingerprinted golden-vector set, comparing the candidate's
//! compiled arena against its own boxed tree (and, for strict redeploys,
//! against the labels the incumbent model produced). The slot also keeps
//! the previous epoch's model, so [`ModelSlot::rollback`] can restore it
//! — republished under a fresh version so reader epochs stay monotone.

use mltree::Label;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use xentry::{FeatureVec, VmTransitionDetector};

/// Poison-tolerant lock: a panic on another thread while it held the
/// mutex (a crashed shard worker, a panicking sink) must not cascade
/// into every future locker. The protected state here is always valid at
/// rest — counters and `Arc` swaps are single assignments — so recovering
/// the guard is safe.
pub fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A deployed detector plus its identity.
#[derive(Debug)]
pub struct VersionedModel {
    /// Monotone version: 1 for the model the service started with, +1 per
    /// hot swap or rollback.
    pub version: u64,
    /// [`VmTransitionDetector::fingerprint`] of the tree.
    pub fingerprint: u64,
    pub detector: VmTransitionDetector,
}

/// Why a validated publish refused a candidate model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The compiled arena fails the structural integrity check; executing
    /// it through the unchecked walkers would be undefined behavior.
    Arena(mltree::ArenaFault),
    /// The candidate's compiled arena disagrees with its own boxed tree
    /// on a golden vector — the arena (or the compiler) is corrupt even
    /// though the structure checks out.
    SelfInconsistent {
        index: usize,
        compiled: Label,
        boxed: Label,
    },
    /// The candidate's batch walker disagrees with its single-sample
    /// walker on a golden vector.
    BatchDivergence { index: usize },
    /// Strict redeploy parity: the candidate disagrees with the expected
    /// golden labels captured from the incumbent model.
    CanaryDivergence {
        index: usize,
        got: Label,
        expected: Label,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Arena(fault) => write!(f, "structural arena fault: {fault}"),
            SwapError::SelfInconsistent {
                index,
                compiled,
                boxed,
            } => write!(
                f,
                "golden vector {index}: compiled arena says {compiled:?}, boxed tree says {boxed:?}"
            ),
            SwapError::BatchDivergence { index } => {
                write!(
                    f,
                    "golden vector {index}: batch walker diverges from single-sample"
                )
            }
            SwapError::CanaryDivergence {
                index,
                got,
                expected,
            } => write!(
                f,
                "golden vector {index}: candidate says {got:?}, incumbent said {expected:?}"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// FNV-1a over a stream of u64 words.
fn fnv1a_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A fingerprinted canary set: feature vectors plus the labels the
/// incumbent model assigned them at capture time. Swap validation walks
/// every vector through the candidate's compiled arena (single-sample
/// *and* batch paths) and cross-checks against the candidate's boxed
/// tree; strict mode additionally requires agreement with the captured
/// labels (the "same tree, fresh training run" redeploy case).
#[derive(Debug, Clone)]
pub struct GoldenSet {
    vectors: Vec<FeatureVec>,
    expected: Vec<Label>,
    fingerprint: u64,
}

impl GoldenSet {
    /// Capture the golden set: classify `vectors` with `reference` and
    /// remember the verdicts.
    pub fn capture(reference: &VmTransitionDetector, vectors: Vec<FeatureVec>) -> GoldenSet {
        assert!(!vectors.is_empty(), "golden set needs at least one vector");
        let expected: Vec<Label> = vectors.iter().map(|f| reference.classify(f)).collect();
        let fingerprint = fnv1a_words(
            vectors
                .iter()
                .flat_map(|f| [f.vmer as u64, f.rt, f.br, f.rm, f.wm])
                .chain(expected.iter().map(|l| l.as_positive() as u64))
                .chain([reference.fingerprint()]),
        );
        GoldenSet {
            vectors,
            expected,
            fingerprint,
        }
    }

    /// Same vectors, expected labels re-captured under a new reference
    /// model. Call after the deployed model legitimately changes (relaxed
    /// swap, rollback) so strict parity tracks the incumbent.
    pub fn recapture(&self, reference: &VmTransitionDetector) -> GoldenSet {
        GoldenSet::capture(reference, self.vectors.clone())
    }

    /// Stable identity of this set (vectors + expected labels + the
    /// reference model's fingerprint): snapshot it next to verdicts so an
    /// audit can tell exactly which canary gate a deployment passed.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Validation every candidate must pass regardless of policy:
    /// structural arena integrity, then canary classification proving the
    /// compiled arena agrees with the candidate's own boxed tree on every
    /// golden vector, on both the single-sample and batch walkers.
    pub fn verify(&self, candidate: &VmTransitionDetector) -> Result<(), SwapError> {
        candidate.validate().map_err(SwapError::Arena)?;
        let mut batch = vec![Label::Correct; self.vectors.len()];
        candidate.classify_batch(&self.vectors, &mut batch);
        for (index, f) in self.vectors.iter().enumerate() {
            let compiled = candidate.classify(f);
            let boxed = candidate.tree().classify(&f.columns());
            if compiled != boxed {
                return Err(SwapError::SelfInconsistent {
                    index,
                    compiled,
                    boxed,
                });
            }
            if batch[index] != compiled {
                return Err(SwapError::BatchDivergence { index });
            }
        }
        Ok(())
    }

    /// [`GoldenSet::verify`] plus strict label parity with the captured
    /// expected verdicts. Use for redeploys that must not change
    /// behavior; a genuinely retrained model belongs behind
    /// [`GoldenSet::verify`] alone.
    pub fn verify_strict(&self, candidate: &VmTransitionDetector) -> Result<(), SwapError> {
        self.verify(candidate)?;
        for (index, (f, &expected)) in self.vectors.iter().zip(&self.expected).enumerate() {
            let got = candidate.classify(f);
            if got != expected {
                return Err(SwapError::CanaryDivergence {
                    index,
                    got,
                    expected,
                });
            }
        }
        Ok(())
    }
}

/// The slot contents: the live model plus the previous epoch's, retained
/// as the rollback target.
struct SlotState {
    current: Arc<VersionedModel>,
    previous: Option<Arc<VersionedModel>>,
}

/// Shared slot holding the current model.
pub struct ModelSlot {
    epoch: AtomicU64,
    state: Mutex<SlotState>,
}

impl ModelSlot {
    /// Install the initial model as version 1.
    pub fn new(detector: VmTransitionDetector) -> ModelSlot {
        let vm = Arc::new(VersionedModel {
            version: 1,
            fingerprint: detector.fingerprint(),
            detector,
        });
        ModelSlot {
            epoch: AtomicU64::new(1),
            state: Mutex::new(SlotState {
                current: vm,
                previous: None,
            }),
        }
    }

    /// Publish a new model; returns its version. Callers racing here
    /// serialize on the mutex; readers are never blocked. The outgoing
    /// model is retained as the rollback target.
    ///
    /// This is the *unvalidated* path — callers own the guarantee that
    /// `detector` came straight from `VmTransitionDetector::new` (which
    /// only builds valid arenas). Anything that could have been corrupted
    /// in flight belongs behind [`ModelSlot::publish_validated`].
    pub fn publish(&self, detector: VmTransitionDetector) -> u64 {
        let mut guard = lock_recovering(&self.state);
        let version = guard.current.version + 1;
        let vm = Arc::new(VersionedModel {
            version,
            fingerprint: detector.fingerprint(),
            detector,
        });
        guard.previous = Some(std::mem::replace(&mut guard.current, vm));
        // Release pairs with the Acquire in `epoch()`: a reader that sees
        // the new epoch will also see the new Arc through the mutex.
        self.epoch.store(version, Ordering::Release);
        version
    }

    /// Validate `detector` against `golden` (strictly when
    /// `require_parity`), then publish. A rejected candidate leaves the
    /// slot untouched: the incumbent keeps classifying, which *is* the
    /// rollback — the epoch never moved.
    pub fn publish_validated(
        &self,
        detector: VmTransitionDetector,
        golden: &GoldenSet,
        require_parity: bool,
    ) -> Result<u64, SwapError> {
        if require_parity {
            golden.verify_strict(&detector)?;
        } else {
            golden.verify(&detector)?;
        }
        Ok(self.publish(detector))
    }

    /// Roll back to the previous epoch's model, republished under a fresh
    /// version (reader epochs stay monotone; verdicts stamped with the
    /// new version carry the old fingerprint). Returns the new version,
    /// or `None` when there is nothing to roll back to. The displaced
    /// model becomes the new rollback target, so roll-forward is the same
    /// call again.
    pub fn rollback(&self) -> Option<u64> {
        let mut guard = lock_recovering(&self.state);
        let prev = guard.previous.take()?;
        let version = guard.current.version + 1;
        let vm = Arc::new(VersionedModel {
            version,
            fingerprint: prev.fingerprint,
            detector: prev.detector.clone(),
        });
        guard.previous = Some(std::mem::replace(&mut guard.current, vm));
        self.epoch.store(version, Ordering::Release);
        Some(version)
    }

    /// Current epoch (== current model version).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current model handle (cold path).
    pub fn load(&self) -> Arc<VersionedModel> {
        Arc::clone(&lock_recovering(&self.state).current)
    }

    /// Fingerprint of the rollback target, if one exists.
    pub fn previous_fingerprint(&self) -> Option<u64> {
        lock_recovering(&self.state)
            .previous
            .as_ref()
            .map(|m| m.fingerprint)
    }
}

/// Per-worker cached handle, revalidated with one atomic load.
pub struct ModelCache {
    epoch: u64,
    model: Arc<VersionedModel>,
}

impl ModelCache {
    pub fn new(slot: &ModelSlot) -> ModelCache {
        ModelCache {
            epoch: slot.epoch(),
            model: slot.load(),
        }
    }

    /// The current model; refreshes from `slot` only when the epoch moved.
    pub fn get(&mut self, slot: &ModelSlot) -> &Arc<VersionedModel> {
        let e = slot.epoch();
        if e != self.epoch {
            self.model = slot.load();
            self.epoch = e;
        }
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltree::{Dataset, DecisionTree, Sample, TrainConfig};
    use xentry::{FeatureVec, FEATURE_NAMES};

    fn detector(split: u64) -> VmTransitionDetector {
        let mut d = Dataset::new(&FEATURE_NAMES);
        for i in 0..40u64 {
            d.push(Sample::new(
                vec![17, split / 2 + i % 10, 5, 3, 2],
                Label::Correct,
            ));
            d.push(Sample::new(
                vec![17, split * 2 + i, 25, 9, 6],
                Label::Incorrect,
            ));
        }
        VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
    }

    fn golden_for(det: &VmTransitionDetector) -> GoldenSet {
        let vectors: Vec<FeatureVec> = (0..64u64)
            .map(|i| FeatureVec {
                vmer: 17,
                rt: 10 + i * 13,
                br: 5 + i % 40,
                rm: 3 + i % 20,
                wm: 2 + i % 10,
            })
            .collect();
        GoldenSet::capture(det, vectors)
    }

    #[test]
    fn publish_bumps_version_and_swaps_tree() {
        let slot = ModelSlot::new(detector(100));
        let mut cache = ModelCache::new(&slot);
        assert_eq!(cache.get(&slot).version, 1);
        let f1 = cache.get(&slot).fingerprint;

        let v = slot.publish(detector(1000));
        assert_eq!(v, 2);
        let m = cache.get(&slot);
        assert_eq!(m.version, 2);
        assert_ne!(
            m.fingerprint, f1,
            "different tree must fingerprint differently"
        );
    }

    #[test]
    fn cache_refreshes_only_on_epoch_change() {
        let slot = ModelSlot::new(detector(100));
        let mut cache = ModelCache::new(&slot);
        let p1 = Arc::as_ptr(cache.get(&slot));
        let p2 = Arc::as_ptr(cache.get(&slot));
        assert_eq!(p1, p2, "no swap: cache must hand back the same Arc");
        slot.publish(detector(500));
        let p3 = Arc::as_ptr(cache.get(&slot));
        assert_ne!(p1, p3);
    }

    #[test]
    fn concurrent_readers_see_consistent_versions() {
        let slot = Arc::new(ModelSlot::new(detector(100)));
        let f = FeatureVec {
            vmer: 17,
            rt: 60,
            br: 5,
            rm: 3,
            wm: 2,
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    let mut cache = ModelCache::new(&slot);
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let m = cache.get(&slot);
                        assert!(m.version >= last, "versions must be monotone per reader");
                        last = m.version;
                        // The handle must always be a complete model.
                        let _ = m.detector.classify(&f);
                    }
                });
            }
            let slot2 = Arc::clone(&slot);
            s.spawn(move || {
                for i in 0..20 {
                    slot2.publish(detector(100 + i * 37));
                }
            });
        });
        assert_eq!(slot.epoch(), 21);
    }

    #[test]
    fn poisoned_slot_keeps_working() {
        let slot = Arc::new(ModelSlot::new(detector(100)));
        let slot2 = Arc::clone(&slot);
        // Poison the state mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = slot2.state.lock().unwrap();
            panic!("poison the slot");
        })
        .join();
        assert!(slot.state.is_poisoned(), "setup must actually poison");
        // Every entry point must recover instead of propagating the panic.
        assert_eq!(slot.load().version, 1);
        assert_eq!(slot.publish(detector(300)), 2);
        assert_eq!(slot.rollback(), Some(3));
    }

    #[test]
    fn golden_set_fingerprint_tracks_contents() {
        let d = detector(100);
        let g1 = golden_for(&d);
        let g2 = golden_for(&d);
        assert_eq!(
            g1.fingerprint(),
            g2.fingerprint(),
            "capture is deterministic"
        );
        let g3 = golden_for(&detector(5000));
        assert_ne!(
            g1.fingerprint(),
            g3.fingerprint(),
            "different reference model, different expected labels"
        );
        assert_eq!(g1.len(), 64);
        assert!(!g1.is_empty());
    }

    #[test]
    fn validated_publish_accepts_healthy_and_rejects_corrupt() {
        let d1 = detector(100);
        let golden = golden_for(&d1);
        let slot = ModelSlot::new(d1.clone());

        // A clean redeploy (JSON round trip of the incumbent) passes the
        // strict gate.
        let redeploy = VmTransitionDetector::from_json(&d1.to_json()).unwrap();
        assert_eq!(slot.publish_validated(redeploy, &golden, true).unwrap(), 2);

        // A retrained model with different behavior passes the relaxed
        // gate but fails strict parity.
        let retrained = detector(4000);
        assert!(matches!(
            golden.verify_strict(&retrained),
            Err(SwapError::CanaryDivergence { .. })
        ));
        assert_eq!(
            slot.publish_validated(retrained, &golden, false).unwrap(),
            3
        );

        // Semantic corruption (threshold flip): structurally valid,
        // caught by the self-consistency canary; the slot must not move.
        let mut corrupt = detector(100);
        corrupt.chaos_flip_arena_bit(63);
        let before = slot.epoch();
        let err = slot.publish_validated(corrupt, &golden, false).unwrap_err();
        assert!(
            matches!(
                err,
                SwapError::SelfInconsistent { .. } | SwapError::CanaryDivergence { .. }
            ),
            "{err}"
        );
        assert_eq!(slot.epoch(), before, "rejected swap must not publish");

        // Structural corruption (child-reference flip): caught before any
        // classification is attempted.
        let mut corrupt = detector(100);
        corrupt.chaos_flip_arena_bit(64 + 30);
        assert!(matches!(
            slot.publish_validated(corrupt, &golden, false),
            Err(SwapError::Arena(_))
        ));
        assert_eq!(slot.epoch(), before);
    }

    #[test]
    fn rollback_restores_previous_model_under_new_version() {
        let d1 = detector(100);
        let d2 = detector(5000);
        let slot = ModelSlot::new(d1.clone());
        assert_eq!(slot.rollback(), None, "nothing to roll back at start");
        assert_eq!(slot.publish(d2.clone()), 2);
        assert_eq!(slot.previous_fingerprint(), Some(d1.fingerprint()));

        let v = slot.rollback().unwrap();
        assert_eq!(v, 3);
        let m = slot.load();
        assert_eq!(m.version, 3);
        assert_eq!(
            m.fingerprint,
            d1.fingerprint(),
            "rollback restores v1's tree"
        );
        // Roll-forward is the same call again: previous is now d2.
        assert_eq!(slot.previous_fingerprint(), Some(d2.fingerprint()));
        let v = slot.rollback().unwrap();
        assert_eq!(v, 4);
        assert_eq!(slot.load().fingerprint, d2.fingerprint());
    }
}
