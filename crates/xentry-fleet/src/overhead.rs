//! Overhead self-accounting: measure what the observability layer costs
//! instead of asserting it is cheap.
//!
//! The paper's Table II reports Xentry's detection overhead in cycles on
//! the hypervisor hot path; DETOx (PAPERS.md) argues detector
//! configurations must be *costed by measurement*. This module applies
//! both to the fleet's own tracing layer: it replays the same synthetic
//! workload through two otherwise-identical services — flight tracing
//! disabled (`trace_depth = 0`, the rings never exist) and enabled — and
//! reports the throughput delta, nanoseconds-per-classification from the
//! exact histogram sums, and cycles-per-classification via a calibrated
//! TSC on x86_64.
//!
//! Methodology: legs alternate untraced/traced (`N` pairs) and each arm
//! keeps its best leg. Best-of-N against best-of-N compares the two
//! configurations at their least-perturbed, which is the honest way to
//! isolate a small constant cost from scheduler noise on a shared CI
//! box; mean-of-N would mostly measure that noise. Queues are sized to
//! accept every offered record, so both arms classify the identical
//! count and the wall clock measures the drain (where tracing cost
//! lands) rather than shedding behavior at saturation. The budget
//! target is <3% throughput regression (`results/overhead.json`).

use crate::replay::{self, ReplayConfig};
use crate::service::{FleetConfig, FleetService, NullSink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Shape of one overhead measurement run.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Shards per service instance.
    pub shards: usize,
    /// Sender threads per leg.
    pub hosts: usize,
    /// Records each sender replays per leg.
    pub records_per_host: usize,
    /// Untraced/traced leg pairs; each arm reports its best leg.
    pub pairs: usize,
    /// Ring depth for the traced legs.
    pub trace_depth: usize,
    /// Seed for the synthetic trace and detector.
    pub seed: u64,
}

impl Default for OverheadConfig {
    fn default() -> OverheadConfig {
        OverheadConfig {
            shards: 4,
            hosts: 4,
            records_per_host: 100_000,
            pairs: 3,
            trace_depth: 8192,
            seed: 42,
        }
    }
}

/// One measured replay leg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadLeg {
    /// Whether flight tracing was enabled for this leg.
    pub traced: bool,
    pub classified: u64,
    /// Wall time of replay + drained shutdown.
    pub wall_ns: u64,
    /// classified / wall, records per second.
    pub throughput_per_sec: f64,
    /// Mean classify cost from the exact histogram sum (not bucketed).
    pub ns_per_classification: f64,
    /// `ns_per_classification` in TSC cycles (0 when no TSC available).
    pub cycles_per_classification: f64,
    pub trace_events: u64,
    pub trace_dropped: u64,
}

/// The Table-II-shaped result written to `results/overhead.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Every leg, in execution order (untraced/traced alternating).
    pub legs: Vec<OverheadLeg>,
    /// Best untraced throughput (records/second).
    pub baseline_throughput: f64,
    /// Best traced throughput (records/second).
    pub traced_throughput: f64,
    /// Throughput cost of tracing, percent (negative = within noise,
    /// traced arm won).
    pub overhead_pct: f64,
    /// Mean classify cost, best traced leg, nanoseconds.
    pub ns_per_classification: f64,
    /// Mean classify cost, best traced leg, TSC cycles (0 off-x86).
    pub cycles_per_classification: f64,
    /// Calibrated TSC frequency (0 when unavailable).
    pub tsc_hz: f64,
    /// The <3% acceptance target.
    pub budget_pct: f64,
    /// `overhead_pct < budget_pct`.
    pub within_budget: bool,
}

impl OverheadReport {
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("overhead report serializes")
    }

    /// Write to `<dir>/overhead.json` (atomic temp-file + rename).
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("overhead.json");
        crate::telemetry::write_atomic(&path, &self.to_json_pretty())?;
        Ok(path)
    }

    /// One-paragraph human summary (the `--trace-overhead` console line).
    pub fn render(&self) -> String {
        format!(
            "trace overhead: baseline {:.0}/s, traced {:.0}/s => {:+.2}% \
             (budget {:.1}%, {}); classify {:.0} ns/record ({:.0} cycles)",
            self.baseline_throughput,
            self.traced_throughput,
            self.overhead_pct,
            self.budget_pct,
            if self.within_budget {
                "within budget"
            } else {
                "OVER BUDGET"
            },
            self.ns_per_classification,
            self.cycles_per_classification,
        )
    }
}

/// Read the CPU timestamp counter, if this architecture has one we know.
#[cfg(target_arch = "x86_64")]
fn rdtsc() -> u64 {
    // Safe on every x86_64 this crate targets; the intrinsic has no
    // preconditions beyond the architecture itself.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
fn rdtsc() -> u64 {
    0
}

/// Calibrate TSC frequency against the monotonic clock (~20 ms spin).
/// Returns 0 when the architecture has no TSC.
pub fn calibrate_tsc_hz() -> f64 {
    let c0 = rdtsc();
    if c0 == 0 && rdtsc() == 0 {
        return 0.0;
    }
    let t0 = Instant::now();
    while t0.elapsed().as_millis() < 20 {
        std::hint::spin_loop();
    }
    let cycles = rdtsc().saturating_sub(c0);
    let ns = t0.elapsed().as_nanos() as f64;
    cycles as f64 * 1e9 / ns
}

fn run_leg(cfg: &OverheadConfig, traced: bool, tsc_hz: f64) -> OverheadLeg {
    // Size the queues to accept every record: with drops out of the
    // picture both arms classify the identical count, so throughput
    // compares like with like and the wall clock measures the drain —
    // the path the tracing cost actually lands on — instead of a noisy
    // ingest/shed storm at saturation.
    let hosts_per_shard = cfg.hosts.div_ceil(cfg.shards.max(1));
    let fleet_cfg = FleetConfig {
        shards: cfg.shards,
        queue_capacity: (cfg.records_per_host * hosts_per_shard).next_power_of_two(),
        trace_depth: if traced { cfg.trace_depth } else { 0 },
        ..FleetConfig::default()
    };
    let detector = replay::synthetic_detector(cfg.seed);
    let trace = replay::synthetic_trace(8192, cfg.seed ^ 0x0ead);
    let svc = FleetService::start(fleet_cfg, detector, Arc::new(NullSink));
    let t0 = Instant::now();
    replay::replay(
        &svc,
        &trace,
        &ReplayConfig {
            hosts: cfg.hosts,
            records_per_host: cfg.records_per_host,
            rate_per_host: 0.0,
        },
    );
    let snap = svc.shutdown();
    // Wall covers replay through drained shutdown so the traced arm also
    // pays for its ring writes on the tail of the queue backlog.
    let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let ns_per = if snap.classify_latency.count > 0 {
        snap.classify_latency.sum as f64 / snap.classify_latency.count as f64
    } else {
        0.0
    };
    OverheadLeg {
        traced,
        classified: snap.classified,
        wall_ns,
        throughput_per_sec: snap.classified as f64 * 1e9 / wall_ns as f64,
        ns_per_classification: ns_per,
        cycles_per_classification: ns_per * tsc_hz / 1e9,
        trace_events: snap.trace_events,
        trace_dropped: snap.trace_dropped,
    }
}

/// Run the alternating-leg measurement and build the report.
pub fn measure_overhead(cfg: &OverheadConfig) -> OverheadReport {
    assert!(cfg.pairs >= 1, "need at least one untraced/traced pair");
    let tsc_hz = calibrate_tsc_hz();
    let mut legs = Vec::with_capacity(cfg.pairs * 2);
    for _ in 0..cfg.pairs {
        legs.push(run_leg(cfg, false, tsc_hz));
        legs.push(run_leg(cfg, true, tsc_hz));
    }
    let best = |traced: bool| -> &OverheadLeg {
        legs.iter()
            .filter(|l| l.traced == traced)
            .max_by(|a, b| {
                a.throughput_per_sec
                    .partial_cmp(&b.throughput_per_sec)
                    .expect("throughput is finite")
            })
            .expect("both arms ran")
    };
    let baseline = best(false);
    let traced = best(true);
    let overhead_pct = (baseline.throughput_per_sec - traced.throughput_per_sec)
        / baseline.throughput_per_sec
        * 100.0;
    let budget_pct = 3.0;
    OverheadReport {
        baseline_throughput: baseline.throughput_per_sec,
        traced_throughput: traced.throughput_per_sec,
        overhead_pct,
        ns_per_classification: traced.ns_per_classification,
        cycles_per_classification: traced.cycles_per_classification,
        tsc_hz,
        budget_pct,
        within_budget: overhead_pct < budget_pct,
        legs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_consistent_report() {
        let report = measure_overhead(&OverheadConfig {
            shards: 2,
            hosts: 2,
            records_per_host: 2_000,
            pairs: 1,
            trace_depth: 1024,
            seed: 7,
        });
        assert_eq!(report.legs.len(), 2);
        assert!(!report.legs[0].traced && report.legs[1].traced);
        assert_eq!(
            report.legs[0].trace_events, 0,
            "untraced leg records nothing"
        );
        assert!(report.legs[1].trace_events > 0, "traced leg records spans");
        assert!(report.baseline_throughput > 0.0);
        assert!(report.traced_throughput > 0.0);
        assert!(report.overhead_pct.is_finite());
        // cycles and ns agree through the calibrated frequency.
        if report.tsc_hz > 0.0 {
            let implied_ns = report.cycles_per_classification / report.tsc_hz * 1e9;
            assert!((implied_ns - report.ns_per_classification).abs() < 1.0);
        }
        let text = report.render();
        assert!(text.contains("trace overhead"), "{text}");
    }

    #[test]
    fn report_round_trips_and_writes_atomically() {
        let report = OverheadReport {
            legs: vec![],
            baseline_throughput: 1000.0,
            traced_throughput: 990.0,
            overhead_pct: 1.0,
            ns_per_classification: 120.0,
            cycles_per_classification: 360.0,
            tsc_hz: 3e9,
            budget_pct: 3.0,
            within_budget: true,
        };
        let back: OverheadReport = serde_json::from_str(&report.to_json_pretty()).unwrap();
        assert!(back.within_budget);
        let dir = std::env::temp_dir().join(format!("xentry-overhead-{}", std::process::id()));
        let path = report.write(&dir).unwrap();
        assert!(path.ends_with("overhead.json"));
        let reread: OverheadReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(reread.budget_pct, 3.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
