//! Bounded lock-free MPMC queue (Vyukov's array-based design).
//!
//! The ingest side of the fleet service must never block the shim hot
//! path: `push` is wait-free in the uncontended case, lock-free under
//! contention, and returns the record to the caller when the queue is
//! full so the service can count the drop and move on. All slot storage
//! is allocated once at construction; steady-state operation performs no
//! allocation.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads a hot atomic to its own cache line to avoid false sharing between
/// the producer and consumer cursors.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Sequence stamp: `pos` when the slot is free for the producer at
    /// `pos`, `pos + 1` once filled (ready for the consumer at `pos`),
    /// and `pos + capacity` after the consumer frees it for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded multi-producer multi-consumer queue with power-of-two capacity.
pub struct MpmcQueue<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Allocate a queue with `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> MpmcQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let buf: Vec<Slot<T>> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcQueue {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Approximate number of queued items (racy, for metrics only).
    pub fn len(&self) -> usize {
        let head = self.dequeue_pos.0.load(Ordering::Relaxed);
        let tail = self.enqueue_pos.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// True when no items are visible (racy, for idle checks).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue. Returns `Err(value)` when the queue is full
    /// so the caller decides the degradation policy (count + drop).
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // The slot has not been freed by the consumer one lap
                // behind: the queue is full.
                return Err(value);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Non-blocking dequeue.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Drain any items still in flight so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = MpmcQueue::with_capacity(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99), "ninth push must report full");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let q = MpmcQueue::<u32>::with_capacity(1000);
        assert_eq!(q.capacity(), 1024);
        let q = MpmcQueue::<u32>::with_capacity(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraps_across_many_laps() {
        let q = MpmcQueue::with_capacity(4);
        for lap in 0u64..1000 {
            for i in 0..4 {
                q.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 20_000;
        let q = Arc::new(MpmcQueue::with_capacity(256));
        let sum = Arc::new(AtomicU64::new(0));
        let got = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                let got = Arc::clone(&got);
                s.spawn(move || loop {
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        got.fetch_add(1, Ordering::Relaxed);
                    } else if got.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(got.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn drop_releases_queued_values() {
        let counter = Arc::new(AtomicU64::new(0));
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q = MpmcQueue::with_capacity(8);
            for _ in 0..5 {
                q.push(Probe(Arc::clone(&counter))).map_err(|_| ()).unwrap();
            }
            let _ = q.pop();
        }
        assert_eq!(
            counter.load(Ordering::Relaxed),
            5,
            "all probes dropped exactly once"
        );
    }
}
