//! Lock-free service metrics: counters and log2-bucket latency
//! histograms, exportable as a JSON snapshot (`results/service.json`).
//!
//! Everything here is plain relaxed atomics — metrics must never
//! introduce synchronization on the classify hot path. Snapshots are
//! racy-consistent, which is the correct tradeoff for monitoring.

use crate::model::lock_recovering;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const BUCKETS: usize = 64;

/// Histogram over `u64` values with power-of-two bucket edges: bucket `i`
/// holds values in `[2^(i-1), 2^i)` (bucket 0 holds 0 and 1). The exact
/// running sum is kept alongside the buckets so exports can report a true
/// mean (and Prometheus exposition a correct `_sum`), not a bucket-edge
/// approximation.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1)
    }

    pub fn record(&self, value: u64) {
        self.buckets[Self::index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Racy-consistent snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot::from_counts(counts, self.sum.load(Ordering::Relaxed))
    }
}

/// Exported histogram: counts plus derived percentiles. Percentile values
/// are the upper edge of the bucket containing the target rank, i.e. an
/// upper bound tight to within 2x.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Exact sum of all recorded values (not bucket-approximated).
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max_bucket_ns: u64,
    /// Non-empty buckets as `(upper_edge, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_counts(counts: Vec<u64>, sum: u64) -> HistogramSnapshot {
        let total: u64 = counts.iter().sum();
        let edge = |i: usize| -> u64 {
            if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            }
        };
        let percentile = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let target = ((total as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return edge(i);
                }
            }
            edge(BUCKETS - 1)
        };
        let max_bucket_ns = counts.iter().rposition(|&c| c > 0).map(edge).unwrap_or(0);
        HistogramSnapshot {
            count: total,
            sum,
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
            max_bucket_ns,
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (edge(i), c))
                .collect(),
        }
    }
}

/// Per-shard counters.
#[derive(Default)]
pub struct ShardMetrics {
    pub classified: AtomicU64,
    pub incorrect: AtomicU64,
    pub dropped: AtomicU64,
    pub batches: AtomicU64,
    /// Records lost to worker panics (claimed but never classified).
    pub lost: AtomicU64,
    /// Worker restarts on this shard (panic recoveries + stall
    /// replacements).
    pub restarts: AtomicU64,
}

/// All service metrics. One instance shared by every producer and worker.
pub struct Metrics {
    /// Records accepted into a queue.
    pub ingested: AtomicU64,
    /// Records rejected because the target shard queue was full.
    pub dropped: AtomicU64,
    /// Model hot swaps performed.
    pub swaps: AtomicU64,
    /// Hot-swap candidates rejected by validation (structural arena fault
    /// or canary divergence).
    pub swap_rejections: AtomicU64,
    /// Model rollbacks to the previous epoch (operator- or
    /// supervisor-initiated).
    pub rollbacks: AtomicU64,
    /// Worker restarts fleet-wide (panic recoveries + stall replacements).
    pub restarts: AtomicU64,
    /// Stalled shards detected by the heartbeat watchdog.
    pub stalls: AtomicU64,
    /// Times the service entered degraded (envelope-fallback) mode.
    pub degraded_entries: AtomicU64,
    /// Verdicts produced by the degraded envelope fallback.
    pub degraded_verdicts: AtomicU64,
    /// Incident dumps emitted (one per Incorrect verdict, minus
    /// rate-limited suppressions).
    pub incidents: AtomicU64,
    /// Incident dumps suppressed by the per-host rate limiter.
    pub suppressed_incidents: AtomicU64,
    /// Time a record waited in its shard queue (ns).
    pub queue_latency: Histogram,
    /// Time to classify one record (ns).
    pub classify_latency: Histogram,
    /// Verdicts per model epoch (the version stamped on the verdict).
    /// Updated once per classified batch, so the mutex is off the
    /// per-record hot path; drives the `epoch` label of the scrape
    /// endpoint's verdict series.
    pub epoch_verdicts: Mutex<BTreeMap<u64, u64>>,
    pub shards: Vec<ShardMetrics>,
}

impl Metrics {
    pub fn new(nr_shards: usize) -> Metrics {
        Metrics {
            ingested: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_rejections: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            degraded_entries: AtomicU64::new(0),
            degraded_verdicts: AtomicU64::new(0),
            incidents: AtomicU64::new(0),
            suppressed_incidents: AtomicU64::new(0),
            queue_latency: Histogram::default(),
            classify_latency: Histogram::default(),
            epoch_verdicts: Mutex::new(BTreeMap::new()),
            shards: (0..nr_shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// Credit `n` verdicts to model `epoch` (called once per batch).
    pub fn count_epoch_verdicts(&self, epoch: u64, n: u64) {
        *lock_recovering(&self.epoch_verdicts)
            .entry(epoch)
            .or_insert(0) += n;
    }

    /// Per-epoch verdict counts, ascending by epoch.
    pub fn epoch_verdicts_sorted(&self) -> Vec<EpochVerdicts> {
        lock_recovering(&self.epoch_verdicts)
            .iter()
            .map(|(&epoch, &verdicts)| EpochVerdicts { epoch, verdicts })
            .collect()
    }

    pub fn total_classified(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.classified.load(Ordering::Relaxed))
            .sum()
    }

    pub fn total_lost(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lost.load(Ordering::Relaxed))
            .sum()
    }
}

/// Per-shard slice of a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    pub shard: usize,
    pub classified: u64,
    pub incorrect: u64,
    pub dropped: u64,
    pub batches: u64,
    pub lost: u64,
    pub restarts: u64,
}

/// Verdict count attributed to one model epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochVerdicts {
    pub epoch: u64,
    pub verdicts: u64,
}

/// JSON-exportable view of the whole service, written to
/// `results/service.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Nanoseconds since the service started.
    pub uptime_ns: u64,
    pub model_version: u64,
    pub model_fingerprint: u64,
    /// Bytes of the deployed model's compiled split arena (its cache
    /// footprint on the classify hot path).
    pub model_arena_bytes: u64,
    /// Split records in the deployed model's arena.
    pub model_nr_splits: u64,
    /// Bytes of the profile-weighted hot prefix — what the cache must
    /// hold to serve ≥90% of split visits; equals `model_arena_bytes`
    /// for an unprofiled layout.
    pub model_hot_prefix_bytes: u64,
    pub ingested: u64,
    pub classified: u64,
    pub dropped: u64,
    /// Records claimed by a worker that panicked before classifying them.
    /// `ingested == classified + lost` after a drained shutdown.
    pub lost: u64,
    pub incorrect: u64,
    pub incidents: u64,
    /// Incident dumps suppressed by the per-host rate limiter.
    pub suppressed_incidents: u64,
    pub swaps: u64,
    pub swap_rejections: u64,
    pub rollbacks: u64,
    /// Worker restarts (panic recoveries + stall replacements).
    pub restarts: u64,
    /// Stalls detected by the heartbeat watchdog.
    pub stalls: u64,
    /// True while the service is in degraded (envelope-fallback) mode.
    pub degraded: bool,
    pub degraded_entries: u64,
    /// Verdicts produced by the degraded envelope fallback.
    pub degraded_verdicts: u64,
    /// classified / uptime, in records per second.
    pub throughput_per_sec: f64,
    /// Flight-trace events recorded since start (including ones since
    /// overwritten by ring overflow). 0 when tracing is disabled.
    pub trace_events: u64,
    /// Flight-trace events lost to ring overflow — exact.
    pub trace_dropped: u64,
    pub queue_latency: HistogramSnapshot,
    pub classify_latency: HistogramSnapshot,
    /// Verdicts per model epoch, ascending.
    pub epoch_verdicts: Vec<EpochVerdicts>,
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceSnapshot {
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Write to `<dir>/service.json`, creating `dir` if needed. The write
    /// is atomic (temp file + rename), so a killed run never leaves a
    /// torn snapshot for partial readers to misparse.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("service.json");
        crate::telemetry::write_atomic(&path, &self.to_json_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 0);
        assert_eq!(Histogram::index(2), 1);
        assert_eq!(Histogram::index(3), 1);
        assert_eq!(Histogram::index(4), 2);
        assert_eq!(Histogram::index(1024), 10);
        assert_eq!(Histogram::index(u64::MAX), 63);
    }

    #[test]
    fn percentiles_walk_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 6, edge 127
        }
        for _ in 0..10 {
            h.record(100_000); // bucket 16, edge 131071
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 100_000, "sum is exact, not bucketed");
        assert_eq!(s.p50, 127);
        assert_eq!(s.p90, 127);
        assert_eq!(s.p99, 131_071);
        assert_eq!(s.max_bucket_ns, 131_071);
        assert_eq!(s.buckets.len(), 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max_bucket_ns, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::default();
        h.record(5);
        h.record(5000);
        let snap = ServiceSnapshot {
            uptime_ns: 1_000_000_000,
            model_version: 2,
            model_fingerprint: 99,
            model_arena_bytes: 2048,
            model_nr_splits: 64,
            model_hot_prefix_bytes: 512,
            ingested: 10,
            classified: 8,
            dropped: 1,
            lost: 1,
            incorrect: 3,
            incidents: 2,
            suppressed_incidents: 1,
            swaps: 1,
            swap_rejections: 1,
            rollbacks: 1,
            restarts: 2,
            stalls: 1,
            degraded: true,
            degraded_entries: 1,
            degraded_verdicts: 4,
            throughput_per_sec: 9.0,
            trace_events: 20,
            trace_dropped: 5,
            queue_latency: h.snapshot(),
            classify_latency: Histogram::default().snapshot(),
            epoch_verdicts: vec![
                EpochVerdicts {
                    epoch: 1,
                    verdicts: 5,
                },
                EpochVerdicts {
                    epoch: 2,
                    verdicts: 3,
                },
            ],
            shards: vec![ShardSnapshot {
                shard: 0,
                classified: 8,
                incorrect: 3,
                dropped: 1,
                batches: 2,
                lost: 1,
                restarts: 2,
            }],
        };
        let back: ServiceSnapshot = serde_json::from_str(&snap.to_json_pretty()).unwrap();
        assert_eq!(back.classified, 8);
        assert_eq!(back.model_arena_bytes, 2048);
        assert_eq!(back.model_nr_splits, 64);
        assert_eq!(back.model_hot_prefix_bytes, 512);
        assert_eq!(back.trace_events, 20);
        assert_eq!(back.trace_dropped, 5);
        assert_eq!(back.epoch_verdicts.len(), 2);
        assert_eq!(back.epoch_verdicts[1].epoch, 2);
        assert_eq!(back.queue_latency.count, 2);
        assert_eq!(back.queue_latency.sum, 5005);
        assert_eq!(back.shards[0].incorrect, 3);
        assert_eq!(back.lost, 1);
        assert_eq!(back.suppressed_incidents, 1);
        assert_eq!(back.swap_rejections, 1);
        assert_eq!(back.rollbacks, 1);
        assert_eq!(back.restarts, 2);
        assert_eq!(back.stalls, 1);
        assert!(back.degraded);
        assert_eq!(back.degraded_verdicts, 4);
        assert_eq!(back.shards[0].restarts, 2);
    }
}
