//! # xentry-fleet — fleet-scale online soft-error detection
//!
//! The paper deploys one Xentry shim per hypervisor. This crate scales
//! that deployment out: many simulated xen-like platform instances report
//! per-activation telemetry (the Table-I feature vector plus VM exit
//! reason and host/VCPU identity) to a central detection service, which
//! classifies each activation with the deployed [`VmTransitionDetector`]
//! and returns verdicts plus fleet statistics.
//!
//! Architecture (one box per module):
//!
//! ```text
//!  hosts (shims)          service                       consumers
//!  ┌────────┐  ingest ┌──────────────┐ verdicts  ┌──────────────┐
//!  │ host 0 ├────────►│ queue shard 0├──────────►│ VerdictSink  │
//!  │ host 1 │  (lock- │    worker 0  │ incidents │ (+ flight-   │
//!  │  ...   │   free, │ queue shard 1│──────────►│  recorder    │
//!  │ host N ├────────►│    worker 1  │           │  dumps)      │
//!  └────────┘  drops  │      ...     │ snapshot  └──────────────┘
//!                     │  ModelSlot ◄─┼─── hot_swap(detector.json)
//!                     │  Metrics     ├──────────► results/service.json
//!                     └──────────────┘
//! ```
//!
//! Design invariants:
//!
//! * **Ingest never blocks** ([`queue`]): bounded lock-free MPMC queues;
//!   a full shard queue drops the record and counts it. The shim hot path
//!   on a reporting host never waits on the service.
//! * **Hot swap is wait-free for readers** ([`model`]): workers revalidate
//!   an epoch counter once per batch; every verdict carries the version
//!   and fingerprint of the model that produced it.
//! * **Post-mortem context survives** ([`recorder`]): each host's last N
//!   activations are kept in a ring and dumped on any `Incorrect`
//!   verdict, fleet-scale analogue of `examples/post_mortem.rs`.
//! * **Metrics are lock-free** ([`metrics`]): relaxed counters and log2
//!   latency histograms, exported as `results/service.json`.
//! * **Workers are supervised** ([`supervisor`]): a panicking worker is
//!   restarted with capped backoff and its abandoned in-flight records
//!   counted (`ingested == classified + lost` after a drained shutdown);
//!   a stalled worker is superseded by the heartbeat watchdog. Repeated
//!   panics escalate to an automatic model rollback, then to degraded
//!   (envelope-fallback) mode with tagged verdicts.
//! * **Deploys are validated** ([`model`]): [`ModelSlot::publish_validated`]
//!   gates candidates behind structural arena checks plus a fingerprinted
//!   golden-vector canary, and retains the previous epoch for rollback.
//! * **Observability is always-on** ([`trace`], [`telemetry`]): lock-free
//!   per-shard flight-trace rings record span events (ingest, queue wait,
//!   batch classify, verdict, hot swap, restart, degrade) keyed by a
//!   per-record trace id that flows into verdicts and incident dumps;
//!   rings export as Chrome trace-event JSON (`results/trace.json`), and
//!   a std-`TcpListener` scrape endpoint serves Prometheus exposition
//!   (`/metrics`), liveness (`/healthz`) and the trace (`/trace`). The
//!   layer's own cost is measured, not guessed ([`overhead`]).
//! * **The claims are chaos-tested** ([`chaos`]): failpoints inject
//!   panicking detectors, bit-flipped candidate arenas, stalled shards,
//!   and queue saturation into a live replay, and [`chaos::run_chaos`]
//!   asserts the recovery invariants.
//!
//! ```
//! use std::sync::Arc;
//! use xentry_fleet::{replay, FleetConfig, FleetService, NullSink, ReplayConfig};
//!
//! let detector = replay::synthetic_detector(1);
//! let svc = FleetService::start(FleetConfig::default(), detector, Arc::new(NullSink));
//! let trace = replay::synthetic_trace(1024, 7);
//! let cfg = ReplayConfig { hosts: 2, records_per_host: 1000, rate_per_host: 0.0 };
//! let report = replay::replay(&svc, &trace, &cfg);
//! let snapshot = svc.shutdown();
//! assert_eq!(snapshot.classified, report.accepted);
//! ```

pub mod chaos;
pub mod metrics;
pub mod model;
pub mod net;
pub mod overhead;
pub mod queue;
pub mod record;
pub mod recorder;
pub mod replay;
pub mod service;
mod shard;
mod supervisor;
pub mod telemetry;
pub mod trace;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport, Failpoints};
pub use metrics::{
    EpochVerdicts, Histogram, HistogramSnapshot, Metrics, ServiceSnapshot, ShardSnapshot,
};
pub use model::{lock_recovering, GoldenSet, ModelCache, ModelSlot, SwapError, VersionedModel};
pub use net::{http_get, HttpServer};
pub use overhead::{measure_overhead, OverheadConfig, OverheadLeg, OverheadReport};
pub use queue::MpmcQueue;
pub use record::{FleetVerdict, HostId, TelemetryRecord, VerdictSource};
pub use recorder::{DumpBudget, FlightRecorder, IncidentDump, RecordedActivation};
pub use replay::{replay, ReplayConfig, ReplayReport};
pub use service::{CollectSink, FleetConfig, FleetService, NullSink, VerdictSink};
pub use telemetry::{
    escape_label_value, parse_exposition, render_prometheus, write_atomic, Exposition,
    TelemetryServer,
};
pub use trace::{SpanKind, TraceEvent, TraceRing, Tracer};

pub use xentry::VmTransitionDetector;
