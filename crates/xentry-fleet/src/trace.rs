//! Always-on flight tracing: lock-free ring buffers of span events.
//!
//! Xentry's core claims are observability claims — detection latency per
//! VM exit, classifier overhead on the hot path, where in the pipeline an
//! error was caught — and ReHype (PAPERS.md) shows that recovering a
//! virtualized system depends on reconstructing precisely what the failed
//! component was doing at detection time. This module makes that
//! reconstruction possible on a *live* fleet: every shard owns a
//! fixed-depth ring of [`TraceEvent`]s ([`TraceRing`]), every control-plane
//! action (hot swap, rollback, restart, degrade) lands in a control ring,
//! and every telemetry record carries a [`Tracer`]-assigned trace id from
//! ingest through classification into its verdict and — for `Incorrect`
//! verdicts — its incident dump. The rings export on demand as Chrome
//! trace-event JSON (`results/trace.json`), loadable in any trace viewer.
//!
//! Cost model: tracing must be *always on*, so a recorded event is one
//! relaxed `fetch_add` to claim a slot plus four relaxed stores — no
//! locks, no allocation, no ordering constraint on the classify hot path.
//! Rings overflow by overwriting the oldest slot; the exact number of
//! overwritten (dropped) events is always reportable as
//! `total() - capacity()`. Snapshots are racy-consistent, which is the
//! correct tradeoff for monitoring; on a quiescent ring (post-shutdown
//! export, single-threaded tests) they are exact.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a span event describes. Record-scoped kinds (`Ingest`,
/// `QueueWait`, `Verdict`, `Drop`) carry the record's trace id;
/// batch- and control-scoped kinds carry id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A record entered its shard queue (`arg` = host).
    Ingest,
    /// A record was rejected because its shard queue was full
    /// (`arg` = host).
    Drop,
    /// Time a record spent queued: `ts` is enqueue, `dur` the wait.
    QueueWait,
    /// One batch classification call (`arg` = batch length, `dur` the
    /// classify span reported by the detector hook).
    BatchClassify,
    /// A verdict was emitted (`arg` bit 0 = incorrect, bit 1 = degraded
    /// envelope source).
    Verdict,
    /// A model hot swap published a new version (`arg` = version).
    HotSwap,
    /// A validated swap rejected its candidate.
    SwapRejected,
    /// The model slot rolled back to the previous epoch
    /// (`arg` = new version).
    Rollback,
    /// A shard worker was restarted after a panic (`arg` = consecutive
    /// panic count).
    Restart,
    /// The watchdog superseded a stalled worker (`arg` = new generation).
    Stall,
    /// The service entered degraded (envelope-fallback) mode.
    Degrade,
    /// The operator acknowledged and left degraded mode.
    Recover,
}

impl SpanKind {
    /// Event name as it appears in the Chrome trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Ingest => "ingest",
            SpanKind::Drop => "drop",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::BatchClassify => "classify_batch",
            SpanKind::Verdict => "verdict",
            SpanKind::HotSwap => "hot_swap",
            SpanKind::SwapRejected => "swap_rejected",
            SpanKind::Rollback => "rollback",
            SpanKind::Restart => "restart",
            SpanKind::Stall => "stall",
            SpanKind::Degrade => "degrade",
            SpanKind::Recover => "recover",
        }
    }

    fn from_u8(b: u8) -> SpanKind {
        match b {
            0 => SpanKind::Ingest,
            1 => SpanKind::Drop,
            2 => SpanKind::QueueWait,
            3 => SpanKind::BatchClassify,
            4 => SpanKind::Verdict,
            5 => SpanKind::HotSwap,
            6 => SpanKind::SwapRejected,
            7 => SpanKind::Rollback,
            8 => SpanKind::Restart,
            9 => SpanKind::Stall,
            10 => SpanKind::Degrade,
            _ => SpanKind::Recover,
        }
    }
}

/// One decoded span event. `ts_ns`/`dur_ns` are service-relative
/// monotonic nanoseconds (the service's `now_ns` clock); `lane` is the
/// shard index the event was recorded on, or the control lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Per-record trace id (0 for batch- and control-scoped events).
    pub trace_id: u64,
    pub kind: SpanKind,
    /// Kind-specific argument; see [`SpanKind`].
    pub arg: u64,
    /// Ring the event was recorded on: worker lane (shard index), ingest
    /// lane (`shards + shard`), or the control lane (`2 * shards`).
    pub lane: u32,
}

/// `arg` has 56 usable bits; the low byte of the packed meta word holds
/// the kind.
const ARG_BITS: u64 = 56;

/// One ring slot: four relaxed-atomic words, so writers never lock and a
/// concurrent reader sees at worst a torn (monitoring-grade) event.
struct EventSlot {
    ts: AtomicU64,
    dur: AtomicU64,
    id: AtomicU64,
    /// `kind as u8 | arg << 8`.
    meta: AtomicU64,
}

/// A counter alone on its cache line: ring heads and id allocators are
/// the only contended words in the tracer, and letting two lanes' heads
/// share a line would couple writers that the lane split exists to
/// decouple.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// Fixed-depth lock-free event ring with oldest-drop overflow.
///
/// Multi-writer: a slot is claimed with one `fetch_add` on `head`, so a
/// superseded worker and its replacement (or producers and the shard
/// worker) can share a ring. `total()` counts every push ever made;
/// `dropped()` is exactly the number of events overwritten since start.
pub struct TraceRing {
    slots: Box<[EventSlot]>,
    mask: u64,
    head: PaddedCounter,
}

impl TraceRing {
    /// Allocate a ring with `depth` slots (rounded up to a power of two,
    /// minimum 2).
    pub fn new(depth: usize) -> TraceRing {
        let cap = depth.max(2).next_power_of_two();
        TraceRing {
            slots: (0..cap)
                .map(|_| EventSlot {
                    ts: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                    id: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            mask: cap as u64 - 1,
            head: PaddedCounter(AtomicU64::new(0)),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event; overwrites the oldest slot when full.
    pub fn push(&self, kind: SpanKind, ts_ns: u64, dur_ns: u64, trace_id: u64, arg: u64) {
        let i = self.head.0.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        slot.id.store(trace_id, Ordering::Relaxed);
        slot.meta
            .store(kind as u8 as u64 | (arg << 8), Ordering::Relaxed);
    }

    /// Events pushed since construction (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.head.0.load(Ordering::Relaxed)
    }

    /// Exactly how many events have been overwritten by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.total().saturating_sub(self.capacity() as u64)
    }

    /// Retained events, oldest first, tagged with `lane`. Racy-consistent
    /// while writers are live; exact on a quiescent ring.
    pub fn snapshot(&self, lane: u32) -> Vec<TraceEvent> {
        let head = self.head.0.load(Ordering::Relaxed);
        let cap = self.capacity() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .map(|i| {
                let slot = &self.slots[(i & self.mask) as usize];
                let meta = slot.meta.load(Ordering::Relaxed);
                TraceEvent {
                    ts_ns: slot.ts.load(Ordering::Relaxed),
                    dur_ns: slot.dur.load(Ordering::Relaxed),
                    trace_id: slot.id.load(Ordering::Relaxed),
                    kind: SpanKind::from_u8((meta & 0xff) as u8),
                    arg: (meta >> 8) & ((1 << ARG_BITS) - 1),
                    lane,
                }
            })
            .collect()
    }
}

/// The fleet's flight tracer: a worker ring and an ingest ring per shard
/// plus a control ring, and the trace-id allocator. Lives in the
/// service's shared state behind an `Arc`, so exports keep working after
/// the service itself has shut down.
///
/// Lane layout: `0..shards` are the worker lanes (queue-wait, classify,
/// verdict spans), `shards..2*shards` the ingest lanes (ingest and drop
/// spans), and the last lane is the control plane. Splitting ingest from
/// worker lanes is a throughput decision, not an aesthetic one: producers
/// and the draining worker would otherwise bounce one ring-head cache
/// line between cores on every single record.
pub struct Tracer {
    rings: Vec<TraceRing>,
    shards: usize,
    depth: usize,
    /// Per-shard trace-id allocators; ids are striped (`n * shards +
    /// shard + 1`) so concurrent producers on different shards never
    /// touch the same counter yet ids stay globally unique and nonzero.
    next_trace_id: Vec<PaddedCounter>,
}

impl Tracer {
    /// `depth` slots per ring; 0 disables tracing entirely (no rings, no
    /// ids — the configuration the overhead baseline measures against).
    pub fn new(shards: usize, depth: usize) -> Tracer {
        Tracer {
            rings: if depth == 0 {
                Vec::new()
            } else {
                (0..2 * shards + 1).map(|_| TraceRing::new(depth)).collect()
            },
            shards,
            depth,
            next_trace_id: (0..shards.max(1))
                .map(|_| PaddedCounter(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// False when constructed with depth 0 — every `record*` call is then
    /// a single branch.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Ring count (`2 * shards` data lanes + 1 control lane), 0 when
    /// disabled.
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }

    /// The ingest lane for a shard (`shards + shard`).
    pub fn ingest_lane(&self, shard: usize) -> usize {
        self.shards + shard
    }

    /// The control lane index (`2 * shards`).
    pub fn control_lane(&self) -> usize {
        self.rings.len().saturating_sub(1)
    }

    /// Allocate the next record trace id for a shard's producer (0 means
    /// "untraced" and is what records carry when tracing is disabled).
    /// Ids are unique and nonzero across all shards, monotone within one.
    pub fn next_id(&self, shard: usize) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let n = self.next_trace_id[shard % self.next_trace_id.len()]
            .0
            .fetch_add(1, Ordering::Relaxed);
        n * self.shards.max(1) as u64 + (shard % self.shards.max(1)) as u64 + 1
    }

    /// Record an event on a shard lane.
    pub fn record(
        &self,
        lane: usize,
        kind: SpanKind,
        ts_ns: u64,
        dur_ns: u64,
        trace_id: u64,
        arg: u64,
    ) {
        if let Some(ring) = self.rings.get(lane) {
            ring.push(kind, ts_ns, dur_ns, trace_id, arg);
        }
    }

    /// Record a control-plane event (hot swap, rollback, degrade, ...).
    pub fn record_control(&self, kind: SpanKind, ts_ns: u64, arg: u64) {
        if self.enabled() {
            self.rings[self.control_lane()].push(kind, ts_ns, 0, 0, arg);
        }
    }

    /// One shard's ring (panics on a bad lane; `None`-free because lanes
    /// are fixed at construction).
    pub fn ring(&self, lane: usize) -> &TraceRing {
        &self.rings[lane]
    }

    /// The last `n` retained events on one lane, oldest first. Empty when
    /// disabled — incident dumps embed this.
    pub fn tail(&self, lane: usize, n: usize) -> Vec<TraceEvent> {
        match self.rings.get(lane) {
            Some(ring) => {
                let mut evs = ring.snapshot(lane as u32);
                if evs.len() > n {
                    evs.drain(..evs.len() - n);
                }
                evs
            }
            None => Vec::new(),
        }
    }

    /// All retained events across every lane, ordered by timestamp.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .rings
            .iter()
            .enumerate()
            .flat_map(|(lane, r)| r.snapshot(lane as u32))
            .collect();
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Events recorded since start, across all lanes (including
    /// overwritten ones).
    pub fn total_events(&self) -> u64 {
        self.rings.iter().map(TraceRing::total).sum()
    }

    /// Events lost to ring overflow, across all lanes — exact.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(TraceRing::dropped).sum()
    }

    /// Export every retained event as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto "JSON Array with metadata" format).
    /// Timestamps are microseconds with nanosecond decimals; lanes map to
    /// `tid`s named `shard-N` / `ingest-N` / `control`.
    pub fn export_chrome(&self) -> String {
        use serde::Value;
        let micros = |ns: u64| Value::Float(ns as f64 / 1000.0);
        let mut events: Vec<Value> = Vec::new();
        for lane in 0..self.lanes() {
            let name = if lane == self.control_lane() {
                "control".to_string()
            } else if lane < self.shards {
                format!("shard-{lane}")
            } else {
                format!("ingest-{}", lane - self.shards)
            };
            events.push(Value::Object(vec![
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(lane as u64)),
                ("name".into(), Value::Str("thread_name".into())),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name))]),
                ),
            ]));
        }
        for e in self.events() {
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(e.kind.name().into())),
                ("cat".into(), Value::Str("fleet".into())),
                ("ph".into(), Value::Str("X".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(e.lane as u64)),
                ("ts".into(), micros(e.ts_ns)),
                ("dur".into(), micros(e.dur_ns)),
                (
                    "args".into(),
                    Value::Object(vec![
                        ("trace_id".into(), Value::UInt(e.trace_id)),
                        ("arg".into(), Value::UInt(e.arg)),
                    ]),
                ),
            ]));
        }
        let doc = Value::Object(vec![
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        serde_json::to_string(&doc).expect("trace export serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops_exactly() {
        let ring = TraceRing::new(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20u64 {
            ring.push(SpanKind::Ingest, i, 0, i + 100, i);
        }
        assert_eq!(ring.total(), 20);
        assert_eq!(ring.dropped(), 12, "oldest 12 of 20 overwritten");
        let evs = ring.snapshot(3);
        assert_eq!(evs.len(), 8);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>(),
            "oldest-first, newest retained"
        );
        assert!(evs.iter().all(|e| e.lane == 3));
        assert_eq!(evs[0].trace_id, 112);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let ring = TraceRing::new(16);
        for i in 0..5u64 {
            ring.push(SpanKind::Verdict, i, 1, i, 0b01);
        }
        assert_eq!(ring.dropped(), 0);
        let evs = ring.snapshot(0);
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[4].kind, SpanKind::Verdict);
        assert_eq!(evs[4].arg, 1);
    }

    #[test]
    fn kind_round_trips_through_meta_packing() {
        let kinds = [
            SpanKind::Ingest,
            SpanKind::Drop,
            SpanKind::QueueWait,
            SpanKind::BatchClassify,
            SpanKind::Verdict,
            SpanKind::HotSwap,
            SpanKind::SwapRejected,
            SpanKind::Rollback,
            SpanKind::Restart,
            SpanKind::Stall,
            SpanKind::Degrade,
            SpanKind::Recover,
        ];
        let ring = TraceRing::new(kinds.len());
        for (i, k) in kinds.iter().enumerate() {
            ring.push(*k, i as u64, 0, 0, 0xdead_beef);
        }
        let evs = ring.snapshot(0);
        for (e, k) in evs.iter().zip(kinds.iter()) {
            assert_eq!(e.kind, *k);
            assert_eq!(e.arg, 0xdead_beef);
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::new(4, 0);
        assert!(!t.enabled());
        assert_eq!(t.lanes(), 0);
        assert_eq!(t.next_id(0), 0);
        assert_eq!(t.next_id(3), 0, "disabled ids stay 0");
        t.record(0, SpanKind::Ingest, 1, 0, 1, 0); // must not panic
        t.record_control(SpanKind::HotSwap, 1, 2);
        assert_eq!(t.total_events(), 0);
        assert!(t.events().is_empty());
        assert!(t.tail(0, 8).is_empty());
    }

    #[test]
    fn tracer_ids_are_unique_and_events_merge_sorted() {
        let t = Tracer::new(2, 8);
        assert!(t.enabled());
        assert_eq!(t.lanes(), 5, "two worker + two ingest lanes + control");
        assert_eq!(t.ingest_lane(1), 3);
        assert_eq!(t.control_lane(), 4);
        // Striped ids: unique and nonzero across shards, monotone within.
        let mut ids: Vec<u64> = (0..10).map(|i| t.next_id(i % 2)).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let a = ids[0];
        let b = ids[1];
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "ids never collide across shards");
        t.record(1, SpanKind::Verdict, 50, 0, b, 0);
        t.record(t.ingest_lane(0), SpanKind::Ingest, 10, 0, a, 7);
        t.record_control(SpanKind::HotSwap, 30, 2);
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![10, 30, 50],
            "merged export is time-ordered"
        );
        assert_eq!(evs[0].lane, 2, "ingest events land on the ingest lane");
        assert_eq!(evs[1].lane, 4, "control lane is last");
        assert_eq!(t.tail(2, 4).len(), 1);
        assert_eq!(t.tail(2, 0).len(), 0);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let t = Tracer::new(1, 8);
        let id = t.next_id(0);
        t.record(t.ingest_lane(0), SpanKind::Ingest, 900, 0, id, 4);
        t.record(0, SpanKind::QueueWait, 1_000, 2_500, id, 0);
        t.record(0, SpanKind::Verdict, 4_000, 0, id, 1);
        let json = t.export_chrome();
        let doc: serde::Value = serde_json::from_str(&json).expect("export parses");
        let evs = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 3 thread-name metadata events (worker, ingest, control lanes)
        // + 3 span events.
        assert_eq!(evs.len(), 6);
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(serde::Value::Str(s)) if s == "X"))
            .map(|e| match e.get("name") {
                Some(serde::Value::Str(s)) => s.as_str(),
                _ => panic!("span without a name"),
            })
            .collect();
        assert_eq!(names, vec!["ingest", "queue_wait", "verdict"]);
    }
}
