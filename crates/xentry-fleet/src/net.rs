//! Shared socket/HTTP plumbing for every std-only network surface of the
//! fleet: the telemetry scrape server ([`crate::telemetry`]) and the
//! distributed wire layer (`xentry-wire`) both sit on plain
//! `TcpListener`/`TcpStream`, and both need the same handful of
//! primitives — stream timeout setup, a request-line router, a one-shot
//! HTTP response writer, a minimal GET client, and a stoppable accept
//! loop. They live here once instead of twice.
//!
//! Nothing in this module knows about metrics, frames, or the service;
//! it is transport only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-connection timeouts for request/response surfaces: a
/// scraper or wire peer that stalls longer than this is treated as gone
/// rather than allowed to wedge a server thread.
pub const READ_TIMEOUT: Duration = Duration::from_millis(500);
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Put `stream` into blocking mode with the given timeouts — the setup
/// every accepted connection (scrape or wire) performs before its first
/// read. `None` disables the respective timeout.
pub fn configure_stream(
    stream: &TcpStream,
    read: Option<Duration>,
    write: Option<Duration>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(read)?;
    stream.set_write_timeout(write)?;
    Ok(())
}

/// Read one HTTP request head from `stream` and return the GET path
/// (query string stripped), or `None` for anything that is not a GET.
/// One read is enough for any real scraper's header block; routing needs
/// nothing past the request line.
pub fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 2048];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    Ok(request.lines().next().and_then(|line| {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("GET"), Some(path)) => {
                Some(path.split('?').next().unwrap_or_default().to_string())
            }
            _ => None,
        }
    }))
}

/// Write a complete `Connection: close` HTTP/1.1 response.
pub fn write_http_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// An HTTP response as a route handler produces it:
/// `(status line, content type, body)`.
pub type HttpResponse = (&'static str, &'static str, String);

/// The standard 404 for these servers.
pub fn not_found(hint: &str) -> HttpResponse {
    (
        "404 Not Found",
        "text/plain; charset=utf-8",
        format!("not found; try {hint}\n"),
    )
}

/// A minimal stoppable HTTP/1.1 GET server: one accept loop on a
/// nonblocking listener, requests served inline on the server thread (a
/// scrape endpoint serves one scraper, not the internet). Dropping the
/// handle (or [`HttpServer::shutdown`]) stops the loop and joins the
/// thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port 0 picks a free port) and serve: `handler` maps a
    /// GET path to a response; non-GET requests get the 404 with `hint`.
    pub fn start(
        addr: impl ToSocketAddrs,
        thread_name: &str,
        handler: impl Fn(&str) -> Option<HttpResponse> + Send + Sync + 'static,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || accept_loop(listener, stop2, handler))?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    handler: impl Fn(&str) -> Option<HttpResponse>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = serve_connection(&mut stream, &handler);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(
    stream: &mut TcpStream,
    handler: &impl Fn(&str) -> Option<HttpResponse>,
) -> std::io::Result<()> {
    configure_stream(stream, Some(READ_TIMEOUT), Some(WRITE_TIMEOUT))?;
    let path = read_request_path(stream)?.unwrap_or_default();
    let (status, content_type, body) = handler(&path).unwrap_or_else(|| not_found("/"));
    write_http_response(stream, status, content_type, &body)
}

/// Minimal HTTP/1.1 GET against an [`HttpServer`] (or anything speaking
/// close-delimited HTTP). Returns `(status_code, body)`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed HTTP status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_routes_and_404s() {
        let server = HttpServer::start("127.0.0.1:0", "net-test", |path| match path {
            "/ok" => Some(("200 OK", "text/plain; charset=utf-8", "hello\n".to_string())),
            _ => None,
        })
        .unwrap();
        let addr = server.addr();
        let (status, body) = http_get(addr, "/ok").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello\n");
        // Query strings are stripped before routing.
        let (status, _) = http_get(addr, "/ok?verbose=1").unwrap();
        assert_eq!(status, 200);
        let (status, body) = http_get(addr, "/missing").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("not found"));
        server.shutdown();
    }

    #[test]
    fn server_survives_a_garbage_request() {
        let server = HttpServer::start("127.0.0.1:0", "net-test-garbage", |_| {
            Some(("200 OK", "text/plain; charset=utf-8", "up\n".to_string()))
        })
        .unwrap();
        let addr = server.addr();
        // Not HTTP at all: the server must answer (404 via the non-GET
        // path → handler still sees "" here, so 200) and keep serving.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x00\x01\x02 nonsense\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        drop(s);
        let (status, _) = http_get(addr, "/anything").unwrap();
        assert_eq!(status, 200, "server must survive garbage");
        server.shutdown();
    }
}
