//! Load-replay driver for the fleet detection service.
//!
//! ```text
//! cargo run --release --bin fleet-replay -- [--quick] [--hosts N]
//!     [--shards K] [--records N] [--rate R] [--swap] [--chaos]
//!     [--workload] [--detector PATH] [--out DIR]
//! ```
//!
//! Replays activation traces from `--hosts` simulated platform instances
//! into a `--shards`-way service, optionally hot-swapping the model
//! mid-replay, then writes the metrics snapshot to `<out>/service.json`.
//!
//! With `--chaos` the replay instead runs the service-level chaos
//! harness ([`xentry_fleet::chaos`]): panicking detectors, corrupted
//! candidate arenas, stalled shards, and queue saturation are injected
//! into the live replay, the recovery invariants are checked, and the
//! process exits nonzero if any were violated.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use xentry::VmTransitionDetector;
use xentry_fleet::{replay, ChaosConfig, FleetConfig, FleetService, NullSink, ReplayConfig};

struct Args {
    hosts: usize,
    shards: usize,
    records_per_host: usize,
    rate_per_host: f64,
    queue_capacity: usize,
    batch: usize,
    swap: bool,
    chaos: bool,
    trace: TraceSource,
    detector: Option<PathBuf>,
    out: PathBuf,
}

/// Where replayed activations come from. `Auto` pairs the trace with the
/// deployed model: a campaign-trained model replays real platform
/// activations; the synthetic fallback model replays its own
/// distribution (mixing them makes every verdict a false positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceSource {
    Auto,
    Workload,
    Synthetic,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            hosts: 8,
            shards: 8,
            records_per_host: 250_000,
            rate_per_host: 0.0,
            queue_capacity: 8192,
            batch: 64,
            swap: false,
            chaos: false,
            trace: TraceSource::Auto,
            detector: None,
            out: PathBuf::from("results"),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--quick" => {
                args.hosts = 4;
                args.shards = 4;
                args.records_per_host = 50_000;
            }
            "--hosts" => {
                args.hosts = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --hosts"))
            }
            "--shards" => {
                args.shards = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --shards"))
            }
            "--records" => {
                args.records_per_host = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --records"))
            }
            "--rate" => {
                args.rate_per_host = value("records/s")
                    .parse()
                    .unwrap_or_else(|_| die("bad --rate"))
            }
            "--queue-capacity" => {
                args.queue_capacity = value("slots")
                    .parse()
                    .unwrap_or_else(|_| die("bad --queue-capacity"))
            }
            "--batch" => args.batch = value("size").parse().unwrap_or_else(|_| die("bad --batch")),
            "--swap" => args.swap = true,
            "--chaos" => args.chaos = true,
            "--workload" => args.trace = TraceSource::Workload,
            "--synthetic" => args.trace = TraceSource::Synthetic,
            "--detector" => args.detector = Some(PathBuf::from(value("path"))),
            "--out" => args.out = PathBuf::from(value("dir")),
            "--help" | "-h" => {
                println!(
                    "fleet-replay [--quick] [--hosts N] [--shards K] [--records N] \
                     [--rate R] [--queue-capacity N] [--batch N] [--swap] [--chaos] \
                     [--workload | --synthetic] [--detector PATH] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.shards == 0 {
        die("--shards must be at least 1");
    }
    if args.hosts == 0 {
        die("--hosts must be at least 1");
    }
    if args.batch == 0 {
        die("--batch must be at least 1");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("fleet-replay: {msg}");
    std::process::exit(2);
}

/// Deployed model: explicit path, then the campaign-trained
/// `results/detector.json`, then a synthetic-data fallback.
fn load_detector(args: &Args) -> (VmTransitionDetector, &'static str) {
    let candidates = [
        args.detector.clone(),
        Some(PathBuf::from("results/detector.json")),
    ];
    for path in candidates.iter().flatten() {
        match std::fs::read_to_string(path) {
            Ok(json) => match VmTransitionDetector::from_json(&json) {
                Ok(det) => {
                    println!(
                        "deployed model: {} (fingerprint {:016x})",
                        path.display(),
                        det.fingerprint()
                    );
                    return (det, "file");
                }
                Err(e) => {
                    if args.detector.is_some() {
                        die(&format!("{}: {e}", path.display()))
                    }
                }
            },
            Err(_) if args.detector.is_none() => {}
            Err(e) => die(&format!("{}: {e}", path.display())),
        }
    }
    let det = xentry_fleet::replay::synthetic_detector(1);
    println!(
        "deployed model: synthetic fallback (fingerprint {:016x})",
        det.fingerprint()
    );
    (det, "synthetic")
}

/// `--chaos`: run the chaos harness instead of a plain replay. The
/// harness owns its own (synthetic-reference) service so every injected
/// fault has a reference classifier to check verdict parity against.
fn run_chaos_mode(args: &Args) -> ! {
    // Injected detector panics are expected and caught by the
    // supervisor; keep them to one line so the report stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        match msg.as_deref() {
            Some(m) if m.starts_with("chaos: injected") => eprintln!("[failpoint] {m}"),
            _ => default_hook(info),
        }
    }));
    let cfg = ChaosConfig {
        hosts: args.hosts,
        records_per_host: args.records_per_host,
        shards: args.shards,
        rate_per_host: if args.rate_per_host > 0.0 {
            args.rate_per_host
        } else {
            10_000.0
        },
        ..ChaosConfig::default()
    };
    println!(
        "chaos run: {} records x {} hosts into {} shards at {}/s/host...",
        cfg.records_per_host, cfg.hosts, cfg.shards, cfg.rate_per_host
    );
    let report = xentry_fleet::run_chaos(&cfg);
    let path = report
        .snapshot
        .write(&args.out)
        .expect("write service.json");
    println!();
    print!("{}", report.render());
    println!("snapshot:   {}", path.display());
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    if args.chaos {
        run_chaos_mode(&args);
    }
    let (detector, source) = load_detector(&args);
    // A retrained model for the mid-replay swap: JSON round-trip of the
    // deployed one, so behavior is identical but the deployment epoch
    // advances (the common "same tree, fresh training run" case).
    let swap_model = VmTransitionDetector::from_json(&detector.to_json()).expect("round trip");

    let use_workload = match args.trace {
        TraceSource::Workload => true,
        TraceSource::Synthetic => false,
        TraceSource::Auto => source == "file",
    };
    let trace = if use_workload {
        println!("collecting workload trace from the simulated platform...");
        xentry_fleet::replay::workload_trace(guest_sim::Benchmark::Postmark, 4096, 21)
    } else {
        xentry_fleet::replay::synthetic_trace(65_536, 7)
    };

    let cfg = FleetConfig {
        shards: args.shards,
        queue_capacity: args.queue_capacity,
        batch: args.batch,
        recorder_depth: 32,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector, Arc::new(NullSink));
    let replay_cfg = ReplayConfig {
        hosts: args.hosts,
        records_per_host: args.records_per_host,
        rate_per_host: args.rate_per_host,
    };
    println!(
        "replaying {} records x {} hosts into {} shards ({}, rate {})...",
        args.records_per_host,
        args.hosts,
        args.shards,
        source,
        if args.rate_per_host > 0.0 {
            format!("{}/s/host", args.rate_per_host)
        } else {
            "unthrottled".into()
        },
    );

    let report = std::thread::scope(|s| {
        let svc_ref = &svc;
        let swapper = args.swap.then(|| {
            s.spawn(move || {
                // Deploy the retrained model while the replay is in
                // flight.
                std::thread::sleep(Duration::from_millis(50));
                let v = svc_ref.hot_swap(swap_model);
                println!("hot-swapped model mid-replay -> version {v}");
            })
        });
        let report = replay(svc_ref, &trace, &replay_cfg);
        if let Some(h) = swapper {
            h.join().expect("swapper panicked");
        }
        report
    });

    let snapshot = svc.shutdown();
    let path = snapshot.write(&args.out).expect("write service.json");

    let secs = report.wall_ns as f64 / 1e9;
    println!();
    println!(
        "replay:     {} sent in {:.2}s ({:.0}/s offered)",
        report.sent, secs, report.offered_per_sec
    );
    println!(
        "service:    {} classified ({:.0}/s), {} dropped ({:.3}%)",
        snapshot.classified,
        snapshot.classified as f64 / secs,
        snapshot.dropped,
        100.0 * snapshot.dropped as f64 / report.sent.max(1) as f64,
    );
    println!(
        "verdicts:   {} incorrect, {} incident dumps, model v{} ({} swaps)",
        snapshot.incorrect, snapshot.incidents, snapshot.model_version, snapshot.swaps
    );
    println!(
        "latency:    queue p50 {}ns p99 {}ns | classify p50 {}ns p99 {}ns",
        snapshot.queue_latency.p50,
        snapshot.queue_latency.p99,
        snapshot.classify_latency.p50,
        snapshot.classify_latency.p99,
    );
    println!("snapshot:   {}", path.display());
}
