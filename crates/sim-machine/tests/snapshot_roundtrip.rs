//! Snapshot round-trip properties: the campaign engine's checkpoint
//! forking is only sound if a restored snapshot is *indistinguishable*
//! from the machine that produced it. For arbitrary straight-line
//! programs (arithmetic, memory traffic, port I/O, workload noise) we
//! check that snapshot → continue → restore → re-run reproduces the
//! original continuation cycle-for-cycle — registers, memory digest,
//! performance counters and step outcomes — and that the sparse
//! [`sim_machine::MachineDelta`] reproduces the exact same state as a
//! full snapshot.

use proptest::prelude::*;
use sim_machine::{
    CycleModel, Insn, Machine, MachineConfig, Memory, Perms, Reg, StepOutcome, VirtMode,
};

const TEXT: u64 = 0x1000;
const DATA: u64 = 0x9000;
const DATA_WORDS: u64 = 64;

/// Base register pinned to the data region; generated instructions never
/// write it, so loads and stores always hit mapped, aligned memory.
const BASE: u8 = 15;

fn build_machine(prog: &[Insn], seed: u64) -> Machine {
    let cfg = MachineConfig {
        nr_cpus: 1,
        host_entry: TEXT,
        host_entry_stride: 0,
        host_stack_base: 0x2_0000,
        host_stack_size: 0x800,
        vmcs_base: 0x3_0000,
        virt_mode: VirtMode::Para,
        cycle_model: CycleModel::default(),
    };
    let mut mem = Memory::new();
    mem.map("text", TEXT, prog.len() + 1, Perms::RX);
    mem.map("data", DATA, DATA_WORDS as usize, Perms::RW);
    mem.map("stack", 0x2_0000, 0x100, Perms::RW);
    mem.map("vmcs", 0x3_0000, 16, Perms::RW);
    let mut words: Vec<u64> = prog.iter().map(|i| i.encode()).collect();
    words.push(Insn::Hlt.encode());
    mem.load_image(TEXT, &words).unwrap();
    let mut m = Machine::new(cfg, mem, seed);
    m.cpu_mut(0).set(Reg::from_index(BASE), DATA);
    m
}

/// A destination register that is not the pinned data base.
fn arb_dst() -> impl Strategy<Value = Reg> {
    (0u8..BASE).prop_map(Reg::from_index)
}

fn arb_src() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_index)
}

/// Instructions that cannot fault in host mode with the base register
/// pinned: arithmetic, aligned in-bounds memory traffic, port I/O and
/// the per-site workload-noise source.
fn arb_straightline_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_dst(), -4096i64..4096).prop_map(|(dst, imm)| Insn::MovImm { dst, imm }),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Insn::MovReg { dst, src }),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Insn::Add { dst, src }),
        (arb_dst(), -4096i64..4096).prop_map(|(dst, imm)| Insn::AddImm { dst, imm }),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Insn::Sub { dst, src }),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Insn::Mul { dst, src }),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Insn::Xor { dst, src }),
        (arb_dst(), 0u8..64).prop_map(|(dst, imm)| Insn::ShlImm { dst, imm }),
        (arb_dst(), 0u8..64).prop_map(|(dst, imm)| Insn::ShrImm { dst, imm }),
        (arb_src(), arb_src()).prop_map(|(a, b)| Insn::Cmp { a, b }),
        (arb_src(), -4096i64..4096).prop_map(|(a, imm)| Insn::CmpImm { a, imm }),
        (arb_dst(), 0u64..DATA_WORDS).prop_map(|(dst, w)| Insn::Load {
            dst,
            base: Reg::from_index(BASE),
            off: (w * 8) as i64,
        }),
        (arb_src(), 0u64..DATA_WORDS).prop_map(|(src, w)| Insn::Store {
            base: Reg::from_index(BASE),
            src,
            off: (w * 8) as i64,
        }),
        (any::<u16>(), arb_src()).prop_map(|(port, src)| Insn::Out { port, src }),
        (arb_dst(), any::<u16>()).prop_map(|(dst, port)| Insn::In { dst, port }),
        (arb_dst(), 1u64..100_000).prop_map(|(dst, bound)| Insn::Noise { dst, bound }),
        Just(Insn::Nop),
    ]
}

/// Everything an observer could compare after one step.
#[derive(Debug, PartialEq)]
struct StepObs {
    outcome: StepOutcome,
    regs: [u64; 16],
    rip: u64,
    rflags: u64,
    cycles: u64,
    insns_retired: u64,
    perf: sim_machine::PerfSample,
    mem_digest: u64,
    state_digest: u64,
}

fn observe(m: &Machine, outcome: StepOutcome) -> StepObs {
    let c = m.cpu(0);
    StepObs {
        outcome,
        regs: c.regs,
        rip: c.rip,
        rflags: c.rflags,
        cycles: c.cycles,
        insns_retired: c.insns_retired,
        perf: c.perf.sample(),
        mem_digest: m.mem.digest(),
        state_digest: m.state_digest(),
    }
}

fn run_observed(m: &mut Machine, steps: usize) -> Vec<StepObs> {
    (0..steps)
        .map(|_| {
            let o = m.step(0);
            observe(m, o)
        })
        .collect()
}

proptest! {
    /// snapshot → continue → restore → re-run: the restored machine's
    /// continuation must match the original cycle-for-cycle, and both
    /// must match a fresh machine run straight through.
    #[test]
    fn snapshot_restore_rerun_matches_cycle_for_cycle(
        prog in proptest::collection::vec(arb_straightline_insn(), 1..40),
        seed in any::<u64>(),
        cut in 0usize..40,
    ) {
        let cut = cut % (prog.len() + 1);
        let mut live = build_machine(&prog, seed);
        for _ in 0..cut {
            live.step(0);
        }
        let snap = live.snapshot();
        prop_assert_eq!(snap.state_digest(), live.state_digest());

        // Continue the live machine to completion (past Hlt is fine —
        // the observation captures whatever the step produced).
        let rest = prog.len() + 1 - cut;
        let live_obs = run_observed(&mut live, rest);

        // Restore and re-run: every observable matches at every step.
        let mut restored = snap.clone();
        let re_obs = run_observed(&mut restored, rest);
        prop_assert_eq!(&re_obs, &live_obs);

        // A fresh machine run straight through agrees too (the snapshot
        // didn't perturb the original execution).
        let mut fresh = build_machine(&prog, seed);
        let fresh_obs = run_observed(&mut fresh, prog.len() + 1);
        prop_assert_eq!(&fresh_obs[cut..], &live_obs[..]);
    }

    /// The sparse delta reproduces exactly the state a full snapshot
    /// holds: `base.apply_delta(later.delta_against(base))` is `later`.
    #[test]
    fn delta_round_trip_reproduces_full_snapshot(
        prog in proptest::collection::vec(arb_straightline_insn(), 1..40),
        seed in any::<u64>(),
        cut in 0usize..40,
    ) {
        let cut = cut % (prog.len() + 1);
        let mut m = build_machine(&prog, seed);
        for _ in 0..cut {
            m.step(0);
        }
        let base = m.snapshot();
        for _ in cut..prog.len() + 1 {
            m.step(0);
        }
        let delta = m.delta_against(&base);
        let mut rebuilt = base.clone();
        rebuilt.apply_delta(&delta);
        prop_assert_eq!(rebuilt.state_digest(), m.state_digest());
        prop_assert_eq!(rebuilt.mem.digest(), m.mem.digest());
        prop_assert!(rebuilt == m, "delta round trip diverged");
        // The delta is sparse: it never carries more words than the
        // program could have written.
        prop_assert!(delta.mem_words() <= prog.len() + 1);
    }
}
