//! Condition-code semantics against a host-side oracle: signed/unsigned
//! comparison outcomes must match Rust's own `i64`/`u64` comparisons for
//! boundary-heavy operand pairs. Getting these wrong would silently warp
//! every handler branch — and with them, the whole fault-propagation story.

use sim_machine::{
    Cond, CycleModel, Event, Insn, Machine, MachineConfig, Memory, Perms, Reg, StepOutcome,
    VirtMode,
};

fn run_compare(a: u64, b: u64, cond: Cond) -> bool {
    let cfg = MachineConfig {
        nr_cpus: 1,
        host_entry: 0x1000,
        host_entry_stride: 0,
        host_stack_base: 0x8000,
        host_stack_size: 0x800,
        vmcs_base: 0x10000,
        virt_mode: VirtMode::Para,
        cycle_model: CycleModel::default(),
    };
    let mut mem = Memory::new();
    mem.map("text", 0x1000, 64, Perms::RX);
    mem.map("stack", 0x8000, 64, Perms::RW);
    mem.map("vmcs", 0x10000, 8, Perms::RW);
    // cmp rax, rbx ; jcc taken -> rcx = 1 ; hlt
    let prog = [
        Insn::Cmp {
            a: Reg::Rax,
            b: Reg::Rbx,
        },
        Insn::Jcc {
            cond,
            target: 0x1000 + 3 * 8,
        },
        Insn::Hlt, // not taken
        Insn::MovImm {
            dst: Reg::Rcx,
            imm: 1,
        }, // taken
        Insn::Hlt,
    ];
    let words: Vec<u64> = prog.iter().map(|i| i.encode()).collect();
    mem.load_image(0x1000, &words).unwrap();
    let mut m = Machine::new(cfg, mem, 1);
    m.cpu_mut(0).set(Reg::Rax, a);
    m.cpu_mut(0).set(Reg::Rbx, b);
    for _ in 0..10 {
        if let StepOutcome::Event(Event::Halt) = m.step(0) {
            return m.cpu(0).get(Reg::Rcx) == 1;
        }
    }
    panic!("program did not halt");
}

/// Boundary-heavy operand set.
fn operands() -> Vec<u64> {
    vec![
        0,
        1,
        2,
        0x7fff_ffff_ffff_fffe,
        0x7fff_ffff_ffff_ffff, // i64::MAX
        0x8000_0000_0000_0000, // i64::MIN
        0x8000_0000_0000_0001,
        0xffff_ffff_ffff_fffe,
        0xffff_ffff_ffff_ffff, // -1
        42,
        0xdead_beef,
    ]
}

#[test]
fn equality_conditions_match_oracle() {
    for &a in &operands() {
        for &b in &operands() {
            assert_eq!(run_compare(a, b, Cond::Eq), a == b, "je {a:#x} {b:#x}");
            assert_eq!(run_compare(a, b, Cond::Ne), a != b, "jne {a:#x} {b:#x}");
        }
    }
}

#[test]
fn signed_conditions_match_oracle() {
    for &a in &operands() {
        for &b in &operands() {
            let (sa, sb) = (a as i64, b as i64);
            assert_eq!(run_compare(a, b, Cond::Lt), sa < sb, "jl {sa} {sb}");
            assert_eq!(run_compare(a, b, Cond::Ge), sa >= sb, "jge {sa} {sb}");
            assert_eq!(run_compare(a, b, Cond::Gt), sa > sb, "jg {sa} {sb}");
            assert_eq!(run_compare(a, b, Cond::Le), sa <= sb, "jle {sa} {sb}");
        }
    }
}

#[test]
fn unsigned_conditions_match_oracle() {
    for &a in &operands() {
        for &b in &operands() {
            assert_eq!(run_compare(a, b, Cond::B), a < b, "jb {a:#x} {b:#x}");
            assert_eq!(run_compare(a, b, Cond::Ae), a >= b, "jae {a:#x} {b:#x}");
        }
    }
}
