//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use sim_machine::{Cond, Insn, Memory, Perms, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_index)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..8).prop_map(|b| Cond::from_u8(b).unwrap())
}

/// imm48 sign-extended range.
fn arb_imm() -> impl Strategy<Value = i64> {
    -(1i64 << 47)..(1i64 << 47)
}

fn arb_addr() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 47)
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_reg(), arb_imm()).prop_map(|(dst, imm)| Insn::MovImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::MovReg { dst, src }),
        (arb_reg(), arb_reg(), arb_imm()).prop_map(|(dst, base, off)| Insn::Load {
            dst,
            base,
            off
        }),
        (arb_reg(), arb_reg(), arb_imm()).prop_map(|(base, src, off)| Insn::Store {
            base,
            src,
            off
        }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Add { dst, src }),
        (arb_reg(), arb_imm()).prop_map(|(dst, imm)| Insn::AddImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Sub { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Mul { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Div { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Xor { dst, src }),
        (arb_reg(), 0u8..64).prop_map(|(dst, imm)| Insn::ShlImm { dst, imm }),
        (arb_reg(), 0u8..64).prop_map(|(dst, imm)| Insn::ShrImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Cmp { a, b }),
        (arb_reg(), arb_imm()).prop_map(|(a, imm)| Insn::CmpImm { a, imm }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Test { a, b }),
        arb_addr().prop_map(|target| Insn::Jmp { target }),
        (arb_cond(), arb_addr()).prop_map(|(cond, target)| Insn::Jcc { cond, target }),
        arb_addr().prop_map(|target| Insn::Call { target }),
        Just(Insn::Ret),
        arb_reg().prop_map(|src| Insn::Push { src }),
        arb_reg().prop_map(|dst| Insn::Pop { dst }),
        arb_reg().prop_map(|target| Insn::JmpReg { target }),
        arb_reg().prop_map(|target| Insn::CallReg { target }),
        Just(Insn::Cpuid),
        Just(Insn::Rdtsc),
        (0u8..38).prop_map(|nr| Insn::Hypercall { nr }),
        Just(Insn::VmEntry),
        Just(Insn::Hlt),
        Just(Insn::Nop),
        any::<u16>().prop_map(|id| Insn::AssertFail { id }),
        (any::<u16>(), arb_reg()).prop_map(|(port, src)| Insn::Out { port, src }),
        (arb_reg(), any::<u16>()).prop_map(|(dst, port)| Insn::In { dst, port }),
        (arb_reg(), 0u64..(1 << 47)).prop_map(|(dst, bound)| Insn::Noise { dst, bound }),
    ]
}

proptest! {
    /// Every well-formed instruction survives an encode/decode round trip.
    #[test]
    fn encode_decode_round_trip(insn in arb_insn()) {
        let word = insn.encode();
        let decoded = Insn::decode(word);
        prop_assert_eq!(decoded, Ok(insn));
    }

    /// Decoding never panics on arbitrary 64-bit words — corrupted RIPs can
    /// fetch any bit pattern.
    #[test]
    fn decode_total_on_arbitrary_words(word in any::<u64>()) {
        let _ = Insn::decode(word);
    }

    /// If an arbitrary word decodes, re-encoding the decoded form must give
    /// an instruction with identical semantics when decoded again
    /// (idempotent normalization).
    #[test]
    fn decode_encode_decode_stable(word in any::<u64>()) {
        if let Ok(insn) = Insn::decode(word) {
            let renorm = Insn::decode(insn.encode());
            prop_assert_eq!(renorm, Ok(insn));
        }
    }

    /// Memory: a written word is read back exactly; neighbours unaffected.
    #[test]
    fn memory_write_read(off in 0u64..512, val in any::<u64>()) {
        let mut m = Memory::new();
        m.map("d", 0x8000, 1024, Perms::RW);
        let addr = 0x8000 + off * 8;
        m.write(addr, val).unwrap();
        prop_assert_eq!(m.read(addr).unwrap(), val);
        // A different slot still holds zero.
        let other = 0x8000 + ((off + 1) % 1024) * 8;
        if other != addr {
            prop_assert_eq!(m.read(other).unwrap(), 0);
        }
    }

    /// Unaligned addresses always fault, mapped or not.
    #[test]
    fn memory_unaligned_always_faults(addr in any::<u64>()) {
        prop_assume!(addr % 8 != 0);
        let mut m = Memory::new();
        m.map("d", 0x8000, 64, Perms::RW);
        prop_assert!(m.read(addr).is_err());
    }
}
