//! Architectural registers.
//!
//! The register file mirrors x86-64's sixteen general-purpose registers.
//! `RSP` is an ordinary GPR (index 4) just as on real hardware, which matters
//! for the fault model: a bit flip in the register holding the stack pointer
//! corrupts pushes, pops and returns exactly as the paper's "stack values"
//! undetected-fault category describes.

use serde::{Deserialize, Serialize};

/// A general-purpose register. Encodings follow x86-64 ModRM register
/// numbers, so `RSP == 4` and `RBP == 5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Decode a 4-bit register field. Always succeeds because every 4-bit
    /// value names a register, as on x86.
    #[inline]
    pub fn from_index(idx: u8) -> Reg {
        Reg::ALL[(idx & 0xf) as usize]
    }

    /// The encoding index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Conventional x86 name, for disassembly and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// RFLAGS bit positions, matching x86-64 layout so that single-bit flips in
/// the flags register hit realistic condition-code bits.
pub mod flags {
    /// Carry flag.
    pub const CF: u64 = 1 << 0;
    /// Zero flag.
    pub const ZF: u64 = 1 << 6;
    /// Sign flag.
    pub const SF: u64 = 1 << 7;
    /// Overflow flag.
    pub const OF: u64 = 1 << 11;
    /// All condition bits the simulator models.
    pub const ALL: u64 = CF | ZF | SF | OF;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_registers() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), r);
        }
    }

    #[test]
    fn rsp_encodes_as_four() {
        assert_eq!(Reg::Rsp.index(), 4);
        assert_eq!(Reg::from_index(4), Reg::Rsp);
    }

    #[test]
    fn from_index_masks_high_bits() {
        assert_eq!(Reg::from_index(0x10), Reg::Rax);
        assert_eq!(Reg::from_index(0xff), Reg::R15);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Reg::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn flag_bits_match_x86_layout() {
        assert_eq!(flags::CF, 0x0001);
        assert_eq!(flags::ZF, 0x0040);
        assert_eq!(flags::SF, 0x0080);
        assert_eq!(flags::OF, 0x0800);
    }
}
