//! Per-logical-CPU performance counters.
//!
//! The paper programs four architectural events (Table I): retired
//! instructions, retired branches, retired load µops and retired store µops.
//! Counters are started by the Xentry shim right before the original handler
//! entry function is called and stopped (and read) at VM entry, so the shim's
//! own work is excluded — this module exposes exactly that enable/disable
//! discipline. "Logical cores do not share performance counters" (§IV), so
//! each [`crate::Cpu`] owns one instance.

use serde::{Deserialize, Serialize};

/// Counter values for the four Table-I hardware events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfSample {
    /// `INST_RETIRED` (synonym RT).
    pub inst_retired: u64,
    /// `BR_INST_RETIRED` (synonym BR).
    pub branches: u64,
    /// `MEM_INST_RETIRED.LOADS` (synonym RM).
    pub loads: u64,
    /// `MEM_INST_RETIRED.STORES` (synonym WM).
    pub stores: u64,
}

/// A per-CPU performance monitoring unit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    enabled: bool,
    counts: PerfSample,
}

impl PerfCounters {
    /// New PMU, disabled, counters zero.
    pub fn new() -> PerfCounters {
        PerfCounters::default()
    }

    /// Zero the counters and start counting (the shim's VM-exit action).
    pub fn start(&mut self) {
        self.counts = PerfSample::default();
        self.enabled = true;
    }

    /// Stop counting and return the sample (the shim's VM-entry action).
    pub fn stop(&mut self) -> PerfSample {
        self.enabled = false;
        self.counts
    }

    /// Whether the PMU is currently counting.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current values without stopping (diagnostics).
    pub fn sample(&self) -> PerfSample {
        self.counts
    }

    /// Record one retired instruction with its event contributions. Called
    /// by the CPU core on every successful retirement while enabled.
    #[inline]
    pub fn record(&mut self, is_branch: bool, reads: u64, writes: u64) {
        if !self.enabled {
            return;
        }
        self.counts.inst_retired += 1;
        self.counts.branches += is_branch as u64;
        self.counts.loads += reads;
        self.counts.stores += writes;
    }

    /// Flip one bit of one counter — the PMC-corruption fault model. MSR
    /// counter registers are architectural state like any GPR: a particle
    /// strike there corrupts exactly the values the VM-transition detector
    /// consumes, without touching program semantics. `counter` selects the
    /// Table-I event (modulo 4, in declaration order); `bit` is taken
    /// modulo 64.
    pub fn corrupt(&mut self, counter: u8, bit: u8) {
        let mask = 1u64 << (bit & 63);
        match counter % 4 {
            0 => self.counts.inst_retired ^= mask,
            1 => self.counts.branches ^= mask,
            2 => self.counts.loads ^= mask,
            _ => self.counts.stores ^= mask,
        }
    }

    /// Name of the counter `corrupt` would hit (report labels).
    pub fn counter_name(counter: u8) -> &'static str {
        match counter % 4 {
            0 => "pmc.inst",
            1 => "pmc.branch",
            2 => "pmc.load",
            _ => "pmc.store",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pmu_ignores_events() {
        let mut p = PerfCounters::new();
        p.record(true, 1, 1);
        assert_eq!(p.sample(), PerfSample::default());
    }

    #[test]
    fn start_record_stop() {
        let mut p = PerfCounters::new();
        p.start();
        p.record(false, 0, 0); // plain ALU op
        p.record(true, 0, 0); // branch
        p.record(false, 1, 0); // load
        p.record(false, 0, 1); // store
        let s = p.stop();
        assert_eq!(s.inst_retired, 4);
        assert_eq!(s.branches, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        // After stop, further events are not counted.
        p.record(true, 1, 1);
        assert_eq!(p.sample(), s);
    }

    #[test]
    fn start_resets_previous_sample() {
        let mut p = PerfCounters::new();
        p.start();
        p.record(false, 0, 0);
        let first = p.stop();
        assert_eq!(first.inst_retired, 1);
        p.start();
        assert_eq!(p.sample(), PerfSample::default());
    }
}
