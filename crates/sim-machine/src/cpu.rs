//! A logical CPU: architectural register file, mode, PMU, cycle counter.

use crate::perf::PerfCounters;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Index of a logical CPU in the machine.
pub type CpuId = usize;

/// Execution mode. The paper's terminology (Intel VMX): guest mode runs VM
/// code, host mode runs hypervisor code; the transitions are VM exit and VM
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Hypervisor execution.
    Host,
    /// VM execution on behalf of `dom` / virtual CPU `vcpu`.
    Guest { dom: u16, vcpu: u16 },
}

impl Mode {
    /// Whether this is host (hypervisor) mode.
    pub fn is_host(self) -> bool {
        matches!(self, Mode::Host)
    }
}

/// Architectural state of one logical CPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cpu {
    /// The sixteen GPRs, indexed by [`Reg::index`].
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register (bit layout in [`crate::reg::flags`]).
    pub rflags: u64,
    /// Current execution mode.
    pub mode: Mode,
    /// Per-logical-core performance monitoring unit.
    pub perf: PerfCounters,
    /// Monotonic cycle counter (drives RDTSC and overhead accounting).
    pub cycles: u64,
    /// Dynamic instruction counter (drives detection-latency measurement,
    /// which the paper reports in instructions).
    pub insns_retired: u64,
}

impl Cpu {
    /// A freshly reset CPU in host mode at `rip = 0`.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 16],
            rip: 0,
            rflags: 0,
            mode: Mode::Host,
            perf: PerfCounters::new(),
            cycles: 0,
            insns_retired: 0,
        }
    }

    /// Read a GPR.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write a GPR.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Stack pointer convenience accessor.
    #[inline]
    pub fn rsp(&self) -> u64 {
        self.get(Reg::Rsp)
    }

    /// Flip one bit of an architectural register. This is the paper's fault
    /// model: "single bit-flip ... in the architectural register state,
    /// including general purpose registers, instruction and stack pointers
    /// and flags" (§V-B).
    pub fn flip_bit(&mut self, target: FlipTarget, bit: u8) {
        let b = 1u64 << (bit & 63);
        match target {
            FlipTarget::Gpr(r) => self.regs[r.index()] ^= b,
            FlipTarget::Rip => self.rip ^= b,
            FlipTarget::Rflags => self.rflags ^= b,
        }
    }
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

/// Where a fault-injection bit flip lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipTarget {
    /// One of the sixteen GPRs (includes RSP, the paper's "stack pointer").
    Gpr(Reg),
    /// The instruction pointer.
    Rip,
    /// The flags register.
    Rflags,
}

impl FlipTarget {
    /// All 18 architectural flip targets.
    pub fn all() -> Vec<FlipTarget> {
        let mut v: Vec<FlipTarget> = Reg::ALL.iter().map(|&r| FlipTarget::Gpr(r)).collect();
        v.push(FlipTarget::Rip);
        v.push(FlipTarget::Rflags);
        v
    }

    /// Diagnostic name.
    pub fn name(&self) -> String {
        match self {
            FlipTarget::Gpr(r) => r.name().to_string(),
            FlipTarget::Rip => "rip".to_string(),
            FlipTarget::Rflags => "rflags".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_cpu_is_host_mode_zeroed() {
        let c = Cpu::new();
        assert!(c.mode.is_host());
        assert_eq!(c.regs, [0; 16]);
        assert_eq!(c.cycles, 0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut c = Cpu::new();
        c.set(Reg::R11, 0xfeed);
        assert_eq!(c.get(Reg::R11), 0xfeed);
        assert_eq!(c.regs[11], 0xfeed);
    }

    #[test]
    fn flip_bit_is_involutive() {
        let mut c = Cpu::new();
        c.set(Reg::Rax, 0x1234);
        c.flip_bit(FlipTarget::Gpr(Reg::Rax), 3);
        assert_eq!(c.get(Reg::Rax), 0x1234 ^ 8);
        c.flip_bit(FlipTarget::Gpr(Reg::Rax), 3);
        assert_eq!(c.get(Reg::Rax), 0x1234);
    }

    #[test]
    fn flip_rip_and_flags() {
        let mut c = Cpu::new();
        c.rip = 0x1000;
        c.flip_bit(FlipTarget::Rip, 4);
        assert_eq!(c.rip, 0x1010);
        c.flip_bit(FlipTarget::Rflags, 6);
        assert_eq!(c.rflags, 1 << 6);
    }

    #[test]
    fn flip_bit_masks_shift() {
        let mut c = Cpu::new();
        c.flip_bit(FlipTarget::Gpr(Reg::Rbx), 64); // masked to bit 0
        assert_eq!(c.get(Reg::Rbx), 1);
    }

    #[test]
    fn eighteen_flip_targets() {
        assert_eq!(FlipTarget::all().len(), 18);
    }
}
