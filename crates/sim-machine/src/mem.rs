//! Region-based physical memory with permissions.
//!
//! Memory is a set of non-overlapping regions of 64-bit words. Every access
//! is checked for mapping, alignment and permission; violations surface as
//! the hardware exceptions the Xentry runtime detector consumes:
//!
//! * unmapped address → `#PF`
//! * store to read-only region (e.g. hypervisor text) → `#PF` (write)
//! * fetch from a non-executable region → `#PF` (fetch)
//! * unaligned word access → `#AC`
//!
//! The null page is never mapped, so corrupted zero-ish pointers fault
//! exactly like on real hardware.

use serde::{Deserialize, Serialize};

/// Access permissions for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perms {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
}

impl Perms {
    /// Read-only data.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Executable, read-only (text sections).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Executable and writable (guest self-modifying regions; discouraged).
    pub const RWX: Perms = Perms {
        read: true,
        write: true,
        exec: true,
    };
}

/// Identifies a region for diagnostics and fault-outcome classification
/// (e.g. "the corrupted store landed in another domain's memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// A contiguous mapped range of words.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    pub id: RegionId,
    /// Human-readable name ("hv.text", "dom1.data", ...).
    pub name: String,
    /// Base byte address; must be 8-aligned.
    pub base: u64,
    /// Backing words.
    pub words: Vec<u64>,
    pub perms: Perms,
}

impl Region {
    /// Size in bytes.
    pub fn len_bytes(&self) -> u64 {
        (self.words.len() as u64) * 8
    }

    /// Whether `addr` (byte address) falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len_bytes()
    }
}

/// Memory access errors, mapped to exceptions by the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// No region maps this address.
    Unmapped { addr: u64 },
    /// Region mapped but the permission is missing.
    Protection { addr: u64 },
    /// Address not 8-byte aligned.
    Unaligned { addr: u64 },
}

/// The physical memory map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Memory {
    /// Regions sorted by base address.
    regions: Vec<Region>,
}

/// Kind of access being performed, for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
    Fetch,
}

impl Memory {
    /// Empty memory map.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Map a new zero-filled region. Panics if it overlaps an existing
    /// region or the base is unaligned — memory maps are built by trusted
    /// setup code, not simulated code.
    pub fn map(&mut self, name: &str, base: u64, words: usize, perms: Perms) -> RegionId {
        assert_eq!(
            base % 8,
            0,
            "region base must be 8-aligned: {name} @ {base:#x}"
        );
        assert!(words > 0, "empty region: {name}");
        let end = base + (words as u64) * 8;
        for r in &self.regions {
            let r_end = r.base + r.len_bytes();
            assert!(
                end <= r.base || base >= r_end,
                "region {name} [{base:#x},{end:#x}) overlaps {} [{:#x},{r_end:#x})",
                r.name,
                r.base
            );
        }
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            id,
            name: name.to_string(),
            base,
            words: vec![0; words],
            perms,
        });
        self.regions.sort_by_key(|r| r.base);
        id
    }

    /// Look up the region covering `addr`.
    pub fn region_at(&self, addr: u64) -> Option<&Region> {
        let idx = match self.regions.binary_search_by(|r| {
            if addr < r.base {
                std::cmp::Ordering::Greater
            } else if addr >= r.base + r.len_bytes() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => return None,
        };
        Some(&self.regions[idx])
    }

    /// Region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        self.regions
            .iter()
            .find(|r| r.id == id)
            .expect("region id valid")
    }

    /// Region lookup by name (setup/diagnostics).
    pub fn region_by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// All regions, sorted by base.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn access(&self, addr: u64, kind: Access) -> Result<(usize, usize), MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let ridx = self
            .regions
            .iter()
            .position(|r| r.contains(addr))
            .ok_or(MemError::Unmapped { addr })?;
        let r = &self.regions[ridx];
        let ok = match kind {
            Access::Read => r.perms.read,
            Access::Write => r.perms.write,
            Access::Fetch => r.perms.exec,
        };
        if !ok {
            return Err(MemError::Protection { addr });
        }
        Ok((ridx, ((addr - r.base) / 8) as usize))
    }

    /// Read the word at `addr` (data read).
    pub fn read(&self, addr: u64) -> Result<u64, MemError> {
        let (r, w) = self.access(addr, Access::Read)?;
        Ok(self.regions[r].words[w])
    }

    /// Write the word at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let (r, w) = self.access(addr, Access::Write)?;
        self.regions[r].words[w] = value;
        Ok(())
    }

    /// Fetch the word at `addr` for execution.
    pub fn fetch(&self, addr: u64) -> Result<u64, MemError> {
        let (r, w) = self.access(addr, Access::Fetch)?;
        Ok(self.regions[r].words[w])
    }

    /// Privileged write used by loaders and the "hardware" (VMCS block,
    /// device DMA): ignores the write permission but still requires the
    /// address to be mapped and aligned.
    pub fn poke(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let ridx = self
            .regions
            .iter()
            .position(|r| r.contains(addr))
            .ok_or(MemError::Unmapped { addr })?;
        let off = ((addr - self.regions[ridx].base) / 8) as usize;
        self.regions[ridx].words[off] = value;
        Ok(())
    }

    /// Privileged read (golden-run differencing, diagnostics).
    pub fn peek(&self, addr: u64) -> Result<u64, MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let r = self.region_at(addr).ok_or(MemError::Unmapped { addr })?;
        Ok(r.words[((addr - r.base) / 8) as usize])
    }

    /// Human-readable memory-map dump (diagnostics).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.regions {
            let p = &r.perms;
            let _ = writeln!(
                s,
                "{:#012x}..{:#012x}  {}{}{}  {:>8} KiB  {}",
                r.base,
                r.base + r.len_bytes(),
                if p.read { 'r' } else { '-' },
                if p.write { 'w' } else { '-' },
                if p.exec { 'x' } else { '-' },
                r.len_bytes() / 1024,
                r.name
            );
        }
        s
    }

    /// Copy a slice of words into memory starting at `addr` (loader).
    pub fn load_image(&mut self, addr: u64, words: &[u64]) -> Result<(), MemError> {
        for (i, &w) in words.iter().enumerate() {
            self.poke(addr + (i as u64) * 8, w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map("text", 0x1000, 16, Perms::RX);
        m.map("data", 0x2000, 16, Perms::RW);
        m.map("rodata", 0x3000, 4, Perms::R);
        m
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        m.write(0x2008, 0xabcd).unwrap();
        assert_eq!(m.read(0x2008).unwrap(), 0xabcd);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = mem();
        assert_eq!(m.read(0x0).unwrap_err(), MemError::Unmapped { addr: 0 });
        assert_eq!(
            m.read(0x9000).unwrap_err(),
            MemError::Unmapped { addr: 0x9000 }
        );
    }

    #[test]
    fn write_to_text_is_protection_fault() {
        let mut m = mem();
        assert_eq!(
            m.write(0x1000, 1).unwrap_err(),
            MemError::Protection { addr: 0x1000 }
        );
    }

    #[test]
    fn fetch_from_data_is_protection_fault() {
        let m = mem();
        assert_eq!(
            m.fetch(0x2000).unwrap_err(),
            MemError::Protection { addr: 0x2000 }
        );
        assert!(m.fetch(0x1008).is_ok());
    }

    #[test]
    fn unaligned_access_faults() {
        let m = mem();
        assert_eq!(
            m.read(0x2001).unwrap_err(),
            MemError::Unaligned { addr: 0x2001 }
        );
    }

    #[test]
    fn read_only_region_rejects_writes_allows_reads() {
        let mut m = mem();
        assert!(m.read(0x3000).is_ok());
        assert_eq!(
            m.write(0x3000, 5).unwrap_err(),
            MemError::Protection { addr: 0x3000 }
        );
    }

    #[test]
    fn poke_bypasses_permissions_but_not_mapping() {
        let mut m = mem();
        m.poke(0x1008, 42).unwrap();
        assert_eq!(m.peek(0x1008).unwrap(), 42);
        assert!(m.poke(0x9000, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut m = mem();
        m.map("bad", 0x1008, 4, Perms::RW);
    }

    #[test]
    fn region_lookup_by_name_and_addr() {
        let m = mem();
        assert_eq!(m.region_by_name("data").unwrap().base, 0x2000);
        assert_eq!(m.region_at(0x2078).unwrap().name, "data");
        assert!(m.region_at(0x2080).is_none());
    }

    #[test]
    fn describe_lists_every_region() {
        let m = mem();
        let d = m.describe();
        for name in ["text", "data", "rodata"] {
            assert!(d.contains(name), "missing {name} in:\n{d}");
        }
        assert!(d.contains("r-x"), "perm rendering");
    }

    #[test]
    fn load_image_places_words() {
        let mut m = mem();
        m.load_image(0x1000, &[1, 2, 3]).unwrap();
        assert_eq!(m.fetch(0x1000).unwrap(), 1);
        assert_eq!(m.fetch(0x1010).unwrap(), 3);
    }
}
