//! Region-based physical memory with permissions.
//!
//! Memory is a set of non-overlapping regions of 64-bit words. Every access
//! is checked for mapping, alignment and permission; violations surface as
//! the hardware exceptions the Xentry runtime detector consumes:
//!
//! * unmapped address → `#PF`
//! * store to read-only region (e.g. hypervisor text) → `#PF` (write)
//! * fetch from a non-executable region → `#PF` (fetch)
//! * unaligned word access → `#AC`
//!
//! The null page is never mapped, so corrupted zero-ish pointers fault
//! exactly like on real hardware.

use serde::{Deserialize, Serialize};

/// Access permissions for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perms {
    pub read: bool,
    pub write: bool,
    pub exec: bool,
}

impl Perms {
    /// Read-only data.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Executable, read-only (text sections).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Executable and writable (guest self-modifying regions; discouraged).
    pub const RWX: Perms = Perms {
        read: true,
        write: true,
        exec: true,
    };
}

/// Identifies a region for diagnostics and fault-outcome classification
/// (e.g. "the corrupted store landed in another domain's memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// A contiguous mapped range of words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    pub id: RegionId,
    /// Human-readable name ("hv.text", "dom1.data", ...).
    pub name: String,
    /// Base byte address; must be 8-aligned.
    pub base: u64,
    /// Backing words.
    pub words: Vec<u64>,
    pub perms: Perms,
}

impl Region {
    /// Size in bytes.
    pub fn len_bytes(&self) -> u64 {
        (self.words.len() as u64) * 8
    }

    /// Whether `addr` (byte address) falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len_bytes()
    }
}

/// Memory access errors, mapped to exceptions by the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// No region maps this address.
    Unmapped { addr: u64 },
    /// Region mapped but the permission is missing.
    Protection { addr: u64 },
    /// Address not 8-byte aligned.
    Unaligned { addr: u64 },
}

/// Present bit of a page-table entry (see [`PageMap`]).
pub const PTE_PRESENT: u64 = 1 << 0;
/// Writable bit of a page-table entry.
pub const PTE_RW: u64 = 1 << 1;
/// Mask selecting the frame (physical page base) bits of a PTE.
pub const PTE_FRAME_MASK: u64 = !0xFFFu64;
/// Bytes per page — every [`PageMap`] uses 4 KiB pages.
pub const PAGE_BYTES: u64 = 0x1000;

/// A single-level page table governing one virtual range: data accesses
/// (never fetches) whose address falls in `[virt_base, virt_base +
/// nr_pages * 4 KiB)` are walked through the PTE array at `ptbl_base`
/// (one word per page, in the memory image itself — so PTE corruption is
/// ordinary word corruption, visible to deltas, digests and microreboot).
///
/// Accesses outside every map pass through untranslated, which keeps the
/// hypervisor's own flat addressing intact while guest data pages get
/// fault-on-walk semantics: a non-present PTE raises `Unmapped` (`#PF`), a
/// write through a read-only PTE raises `Protection`, and corrupted frame
/// bits silently redirect the access — exactly the three failure shapes of
/// real PTE soft errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMap {
    /// First virtual byte address the map governs (page-aligned).
    pub virt_base: u64,
    /// Pages in the map.
    pub nr_pages: u32,
    /// Byte address of the first PTE word backing this map.
    pub ptbl_base: u64,
}

impl PageMap {
    /// Whether `addr` falls inside the governed virtual range.
    pub fn covers(&self, addr: u64) -> bool {
        addr >= self.virt_base && addr < self.virt_base + self.nr_pages as u64 * PAGE_BYTES
    }

    /// Byte address of the PTE word governing `addr` (which must be
    /// covered).
    pub fn pte_addr(&self, addr: u64) -> u64 {
        self.ptbl_base + ((addr - self.virt_base) / PAGE_BYTES) * 8
    }

    /// The identity PTE for page `page` of this map: present, writable,
    /// frame equal to the virtual page base (what boot installs).
    pub fn identity_pte(&self, page: u32) -> u64 {
        (self.virt_base + page as u64 * PAGE_BYTES) | PTE_PRESENT | PTE_RW
    }
}

/// The physical memory map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    /// Regions sorted by base address.
    regions: Vec<Region>,
    /// Page maps governing translated virtual ranges. Boot-static (the
    /// descriptors never change after setup; the PTE *words* live in a
    /// region and change like any other memory).
    page_maps: Vec<PageMap>,
}

/// Sparse word-level difference between two memory images that share one
/// region layout (same regions, bases, sizes). Campaign checkpoints only
/// ever diff descendants of a single boot image, whose layout is fixed at
/// load time, so the delta never needs to describe mapping changes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryDelta {
    /// `(region index, word index, new value)` for every word that differs.
    pub words: Vec<(u32, u32, u64)>,
}

impl MemoryDelta {
    /// Number of changed words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the two images were identical.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Kind of access being performed, for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
    Fetch,
}

impl Memory {
    /// Empty memory map.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Map a new zero-filled region. Panics if it overlaps an existing
    /// region or the base is unaligned — memory maps are built by trusted
    /// setup code, not simulated code.
    pub fn map(&mut self, name: &str, base: u64, words: usize, perms: Perms) -> RegionId {
        assert_eq!(
            base % 8,
            0,
            "region base must be 8-aligned: {name} @ {base:#x}"
        );
        assert!(words > 0, "empty region: {name}");
        let end = base + (words as u64) * 8;
        for r in &self.regions {
            let r_end = r.base + r.len_bytes();
            assert!(
                end <= r.base || base >= r_end,
                "region {name} [{base:#x},{end:#x}) overlaps {} [{:#x},{r_end:#x})",
                r.name,
                r.base
            );
        }
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            id,
            name: name.to_string(),
            base,
            words: vec![0; words],
            perms,
        });
        self.regions.sort_by_key(|r| r.base);
        id
    }

    /// Look up the region covering `addr`.
    pub fn region_at(&self, addr: u64) -> Option<&Region> {
        let idx = match self.regions.binary_search_by(|r| {
            if addr < r.base {
                std::cmp::Ordering::Greater
            } else if addr >= r.base + r.len_bytes() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => return None,
        };
        Some(&self.regions[idx])
    }

    /// Region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        self.regions
            .iter()
            .find(|r| r.id == id)
            .expect("region id valid")
    }

    /// Region lookup by name (setup/diagnostics).
    pub fn region_by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// All regions, sorted by base.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn access(&self, addr: u64, kind: Access) -> Result<(usize, usize), MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let ridx = self
            .regions
            .iter()
            .position(|r| r.contains(addr))
            .ok_or(MemError::Unmapped { addr })?;
        let r = &self.regions[ridx];
        let ok = match kind {
            Access::Read => r.perms.read,
            Access::Write => r.perms.write,
            Access::Fetch => r.perms.exec,
        };
        if !ok {
            return Err(MemError::Protection { addr });
        }
        Ok((ridx, ((addr - r.base) / 8) as usize))
    }

    /// Read the word at `addr` (data read).
    pub fn read(&self, addr: u64) -> Result<u64, MemError> {
        let (r, w) = self.access(addr, Access::Read)?;
        Ok(self.regions[r].words[w])
    }

    /// Write the word at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let (r, w) = self.access(addr, Access::Write)?;
        self.regions[r].words[w] = value;
        Ok(())
    }

    /// Register a page map over a virtual range (trusted setup code, like
    /// [`Memory::map`]). The PTE words at `ptbl_base` must already be
    /// mapped; setup fills them with identity entries.
    pub fn add_page_map(&mut self, map: PageMap) {
        assert!(
            map.virt_base.is_multiple_of(PAGE_BYTES),
            "page map base must be page-aligned: {:#x}",
            map.virt_base
        );
        assert!(map.nr_pages > 0, "empty page map");
        for m in &self.page_maps {
            assert!(
                !m.covers(map.virt_base) && !map.covers(m.virt_base),
                "page maps overlap at {:#x}",
                map.virt_base
            );
        }
        self.page_maps.push(map);
    }

    /// Registered page maps.
    pub fn page_maps(&self) -> &[PageMap] {
        &self.page_maps
    }

    /// Walk `addr` through the covering page map, if any. Returns the
    /// physical address data accesses must use; addresses outside every
    /// map translate to themselves. A non-present PTE faults `Unmapped`, a
    /// write through a read-only PTE faults `Protection` — both reported
    /// against the *virtual* address, as hardware does. The PTE read
    /// itself is a raw walk (privileged, no recursion, no PMC events).
    pub fn translate(&self, addr: u64, write: bool) -> Result<u64, MemError> {
        let Some(map) = self.page_maps.iter().find(|m| m.covers(addr)) else {
            return Ok(addr);
        };
        let pte = self.peek(map.pte_addr(addr))?;
        if pte & PTE_PRESENT == 0 {
            return Err(MemError::Unmapped { addr });
        }
        if write && pte & PTE_RW == 0 {
            return Err(MemError::Protection { addr });
        }
        Ok((pte & PTE_FRAME_MASK) | (addr & (PAGE_BYTES - 1)))
    }

    /// Read the word at virtual address `addr`: translate through the
    /// covering page map (identity outside every map), then [`Memory::read`].
    pub fn read_v(&self, addr: u64) -> Result<u64, MemError> {
        let pa = self.translate(addr, false)?;
        self.read(pa)
    }

    /// Write the word at virtual address `addr` (see [`Memory::read_v`]).
    pub fn write_v(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let pa = self.translate(addr, true)?;
        self.write(pa, value)
    }

    /// Fetch the word at `addr` for execution.
    pub fn fetch(&self, addr: u64) -> Result<u64, MemError> {
        let (r, w) = self.access(addr, Access::Fetch)?;
        Ok(self.regions[r].words[w])
    }

    /// Privileged write used by loaders and the "hardware" (VMCS block,
    /// device DMA): ignores the write permission but still requires the
    /// address to be mapped and aligned.
    pub fn poke(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let ridx = self
            .regions
            .iter()
            .position(|r| r.contains(addr))
            .ok_or(MemError::Unmapped { addr })?;
        let off = ((addr - self.regions[ridx].base) / 8) as usize;
        self.regions[ridx].words[off] = value;
        Ok(())
    }

    /// Privileged read (golden-run differencing, diagnostics).
    pub fn peek(&self, addr: u64) -> Result<u64, MemError> {
        if !addr.is_multiple_of(8) {
            return Err(MemError::Unaligned { addr });
        }
        let r = self.region_at(addr).ok_or(MemError::Unmapped { addr })?;
        Ok(r.words[((addr - r.base) / 8) as usize])
    }

    /// Human-readable memory-map dump (diagnostics).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.regions {
            let p = &r.perms;
            let _ = writeln!(
                s,
                "{:#012x}..{:#012x}  {}{}{}  {:>8} KiB  {}",
                r.base,
                r.base + r.len_bytes(),
                if p.read { 'r' } else { '-' },
                if p.write { 'w' } else { '-' },
                if p.exec { 'x' } else { '-' },
                r.len_bytes() / 1024,
                r.name
            );
        }
        s
    }

    /// Copy a slice of words into memory starting at `addr` (loader).
    pub fn load_image(&mut self, addr: u64, words: &[u64]) -> Result<(), MemError> {
        for (i, &w) in words.iter().enumerate() {
            self.poke(addr + (i as u64) * 8, w)?;
        }
        Ok(())
    }

    /// Sparse difference of `self` against `base`. Both images must share
    /// one region layout (checkpoints of a single boot image always do).
    ///
    /// # Panics
    /// If the layouts differ — that would mean the delta silently dropped
    /// state, which a checkpoint store must never do.
    pub fn delta_from(&self, base: &Memory) -> MemoryDelta {
        assert_eq!(
            self.regions.len(),
            base.regions.len(),
            "memory delta requires an identical region layout"
        );
        let mut words = Vec::new();
        for (ridx, (cur, old)) in self.regions.iter().zip(&base.regions).enumerate() {
            assert!(
                cur.base == old.base && cur.words.len() == old.words.len(),
                "region {} layout changed between checkpoints",
                cur.name
            );
            for (widx, (&c, &o)) in cur.words.iter().zip(&old.words).enumerate() {
                if c != o {
                    words.push((ridx as u32, widx as u32, c));
                }
            }
        }
        MemoryDelta { words }
    }

    /// Apply a delta produced by [`Memory::delta_from`] against this exact
    /// image, replaying the recorded word changes in place.
    pub fn apply_delta(&mut self, delta: &MemoryDelta) {
        for &(ridx, widx, value) in &delta.words {
            self.regions[ridx as usize].words[widx as usize] = value;
        }
    }

    /// Deterministic 64-bit digest of the full image (layout + contents).
    /// Stable across processes and Rust releases; used by the snapshot
    /// round-trip tests and the campaign determinism harness.
    pub fn digest(&self) -> u64 {
        use crate::prng::fold64;
        let mut h = fold64(0x6d65_6d6f_7279, self.regions.len() as u64);
        for r in &self.regions {
            h = fold64(h, r.base);
            h = fold64(h, r.words.len() as u64);
            for b in r.name.bytes() {
                h = fold64(h, b as u64);
            }
            for &w in &r.words {
                h = fold64(h, w);
            }
        }
        for m in &self.page_maps {
            h = fold64(h, m.virt_base);
            h = fold64(h, m.nr_pages as u64);
            h = fold64(h, m.ptbl_base);
        }
        h
    }

    /// Overwrite the named region's contents with `words` (privileged,
    /// loader-grade: ignores write permission). Returns how many words
    /// actually changed — the caller's state-loss accounting.
    ///
    /// # Panics
    /// If the region is missing or the length differs: callers restore
    /// images captured from this same layout, so a mismatch means the
    /// image belongs to a different machine.
    pub fn restore_region(&mut self, name: &str, words: &[u64]) -> usize {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("restore_region: no region named {name}"));
        assert_eq!(
            r.words.len(),
            words.len(),
            "restore_region: image size mismatch for {name}"
        );
        let mut changed = 0usize;
        for (dst, &src) in r.words.iter_mut().zip(words) {
            if *dst != src {
                *dst = src;
                changed += 1;
            }
        }
        changed
    }

    /// Deterministic digest of a single region's contents, or `None` when
    /// no region has that name. Lets callers assert which regions changed
    /// across an operation (e.g. that a hypervisor microreboot reset the
    /// private families while preserving guest-visible state) without
    /// comparing full images.
    pub fn region_digest(&self, name: &str) -> Option<u64> {
        use crate::prng::fold64;
        let r = self.region_by_name(name)?;
        let mut h = fold64(0x7265_6769_6f6e, r.base);
        for &w in &r.words {
            h = fold64(h, w);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map("text", 0x1000, 16, Perms::RX);
        m.map("data", 0x2000, 16, Perms::RW);
        m.map("rodata", 0x3000, 4, Perms::R);
        m
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        m.write(0x2008, 0xabcd).unwrap();
        assert_eq!(m.read(0x2008).unwrap(), 0xabcd);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = mem();
        assert_eq!(m.read(0x0).unwrap_err(), MemError::Unmapped { addr: 0 });
        assert_eq!(
            m.read(0x9000).unwrap_err(),
            MemError::Unmapped { addr: 0x9000 }
        );
    }

    #[test]
    fn write_to_text_is_protection_fault() {
        let mut m = mem();
        assert_eq!(
            m.write(0x1000, 1).unwrap_err(),
            MemError::Protection { addr: 0x1000 }
        );
    }

    #[test]
    fn fetch_from_data_is_protection_fault() {
        let m = mem();
        assert_eq!(
            m.fetch(0x2000).unwrap_err(),
            MemError::Protection { addr: 0x2000 }
        );
        assert!(m.fetch(0x1008).is_ok());
    }

    #[test]
    fn unaligned_access_faults() {
        let m = mem();
        assert_eq!(
            m.read(0x2001).unwrap_err(),
            MemError::Unaligned { addr: 0x2001 }
        );
    }

    #[test]
    fn read_only_region_rejects_writes_allows_reads() {
        let mut m = mem();
        assert!(m.read(0x3000).is_ok());
        assert_eq!(
            m.write(0x3000, 5).unwrap_err(),
            MemError::Protection { addr: 0x3000 }
        );
    }

    #[test]
    fn poke_bypasses_permissions_but_not_mapping() {
        let mut m = mem();
        m.poke(0x1008, 42).unwrap();
        assert_eq!(m.peek(0x1008).unwrap(), 42);
        assert!(m.poke(0x9000, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut m = mem();
        m.map("bad", 0x1008, 4, Perms::RW);
    }

    #[test]
    fn region_lookup_by_name_and_addr() {
        let m = mem();
        assert_eq!(m.region_by_name("data").unwrap().base, 0x2000);
        assert_eq!(m.region_at(0x2078).unwrap().name, "data");
        assert!(m.region_at(0x2080).is_none());
    }

    #[test]
    fn describe_lists_every_region() {
        let m = mem();
        let d = m.describe();
        for name in ["text", "data", "rodata"] {
            assert!(d.contains(name), "missing {name} in:\n{d}");
        }
        assert!(d.contains("r-x"), "perm rendering");
    }

    #[test]
    fn load_image_places_words() {
        let mut m = mem();
        m.load_image(0x1000, &[1, 2, 3]).unwrap();
        assert_eq!(m.fetch(0x1000).unwrap(), 1);
        assert_eq!(m.fetch(0x1010).unwrap(), 3);
    }

    #[test]
    fn delta_round_trip_restores_exact_image() {
        let base = mem();
        let mut cur = base.clone();
        cur.write(0x2008, 7).unwrap();
        cur.write(0x2078, 0xdead).unwrap();
        cur.poke(0x1000, 99).unwrap();
        let d = cur.delta_from(&base);
        assert_eq!(d.len(), 3);
        let mut rebuilt = base.clone();
        rebuilt.apply_delta(&d);
        assert_eq!(rebuilt, cur);
        assert_eq!(rebuilt.digest(), cur.digest());
    }

    #[test]
    fn delta_of_identical_images_is_empty() {
        let m = mem();
        assert!(m.delta_from(&m.clone()).is_empty());
    }

    #[test]
    fn digest_tracks_content_and_layout() {
        let a = mem();
        let mut b = mem();
        assert_eq!(a.digest(), b.digest());
        b.poke(0x2000, 1).unwrap();
        assert_ne!(a.digest(), b.digest());
        let mut c = Memory::new();
        c.map("other", 0x1000, 16, Perms::RX);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn region_digest_tracks_only_that_region() {
        let a = mem();
        let mut b = mem();
        b.poke(0x2000, 7).unwrap();
        assert_eq!(a.region_digest("text"), b.region_digest("text"));
        assert_ne!(a.region_digest("data"), b.region_digest("data"));
        assert!(a.region_digest("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "identical region layout")]
    fn delta_rejects_layout_mismatch() {
        let a = mem();
        let mut b = Memory::new();
        b.map("text", 0x1000, 16, Perms::RX);
        let _ = a.delta_from(&b);
    }

    /// Two-page mapped range at 0x10_0000 with its PTE words at 0x8000.
    fn paged_mem() -> (Memory, PageMap) {
        let mut m = mem();
        m.map("ptbl", 0x8000, 4, Perms::RW);
        m.map("paged", 0x10_0000, (2 * PAGE_BYTES / 8) as usize, Perms::RW);
        let map = PageMap {
            virt_base: 0x10_0000,
            nr_pages: 2,
            ptbl_base: 0x8000,
        };
        for page in 0..2 {
            m.poke(0x8000 + page * 8, map.identity_pte(page as u32))
                .unwrap();
        }
        m.add_page_map(map);
        (m, map)
    }

    #[test]
    fn identity_pte_translates_to_self() {
        let (mut m, _) = paged_mem();
        m.write_v(0x10_0008, 0xfeed).unwrap();
        assert_eq!(m.read_v(0x10_0008).unwrap(), 0xfeed);
        assert_eq!(m.peek(0x10_0008).unwrap(), 0xfeed, "identity map");
        // Unmapped addresses pass through untranslated.
        assert_eq!(m.translate(0x2008, false).unwrap(), 0x2008);
    }

    #[test]
    fn cleared_present_bit_faults_on_walk() {
        let (mut m, map) = paged_mem();
        let pte = m.peek(0x8008).unwrap();
        m.poke(0x8008, pte & !PTE_PRESENT).unwrap();
        let va = map.virt_base + PAGE_BYTES; // page 1
        assert_eq!(m.read_v(va).unwrap_err(), MemError::Unmapped { addr: va });
        // Page 0 still translates.
        assert!(m.read_v(map.virt_base).is_ok());
    }

    #[test]
    fn cleared_rw_bit_faults_writes_only() {
        let (mut m, map) = paged_mem();
        let pte = m.peek(0x8000).unwrap();
        m.poke(0x8000, pte & !PTE_RW).unwrap();
        let va = map.virt_base;
        assert!(m.read_v(va).is_ok());
        assert_eq!(
            m.write_v(va, 1).unwrap_err(),
            MemError::Protection { addr: va }
        );
    }

    #[test]
    fn corrupted_frame_bits_redirect_or_fault() {
        let (mut m, map) = paged_mem();
        let pte = m.peek(0x8000).unwrap();
        // Flip a high frame bit: the walk lands in unmapped space.
        m.poke(0x8000, pte ^ (1 << 40)).unwrap();
        assert!(matches!(
            m.read_v(map.virt_base),
            Err(MemError::Unmapped { .. })
        ));
        // Redirect page 0's frame to page 1: reads alias the other page.
        m.poke(0x8000, map.identity_pte(1)).unwrap();
        m.poke(map.virt_base + PAGE_BYTES, 0x5150).unwrap();
        assert_eq!(m.read_v(map.virt_base).unwrap(), 0x5150);
    }

    #[test]
    fn digest_tracks_page_maps() {
        let (m, _) = paged_mem();
        let mut plain = mem();
        plain.map("ptbl", 0x8000, 4, Perms::RW);
        plain.map("paged", 0x10_0000, (2 * PAGE_BYTES / 8) as usize, Perms::RW);
        for page in 0..2u64 {
            plain
                .poke(0x8000 + page * 8, (0x10_0000 + page * PAGE_BYTES) | 3)
                .unwrap();
        }
        assert_ne!(m.digest(), plain.digest(), "maps are part of the layout");
    }
}
