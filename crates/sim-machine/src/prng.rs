//! Deterministic randomness for the `NOISE` instruction.
//!
//! Hypervisor handlers and guest workloads need data-dependent variability —
//! different loop trip counts, different pending-event populations — so that
//! correct executions of the same VM exit reason form a *distribution*, not a
//! single point. (Otherwise the VM-transition classifier's job would be
//! trivial exact-matching, which is not what the paper evaluates.)
//!
//! Two requirements shape the design:
//!
//! 1. **Snapshot determinism** — a golden re-run from the same snapshot
//!    replays the identical sequence (the fault-injection campaign's
//!    golden-run differencing relies on it).
//! 2. **Site independence** — a fault that lengthens one handler's path
//!    must not shift the random values seen later by *unrelated* code
//!    (guest workloads), or every injected fault would trivially look like
//!    an SDC. [`SiteNoise`] therefore dedicates an independent stream to
//!    every `NOISE` instruction address: the value is a pure function of
//!    `(seed, rip, per-site counter)`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// SplitMix64 generator — tiny, fast, good enough for workload variability,
/// and trivially snapshottable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound == 0` is treated as 1.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        let b = bound.max(1);
        self.next_u64() % b
    }

    /// Raw generator state (snapshot digests; the stream is a pure function
    /// of this value).
    pub fn state(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn bound_zero_yields_zero() {
        let mut g = SplitMix64::new(7);
        assert_eq!(g.next_below(0), 0);
        assert_eq!(g.next_below(1), 0);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(g.next_below(17) < 17);
        }
    }

    #[test]
    fn snapshot_replays_identically() {
        let mut g = SplitMix64::new(1234);
        g.next_u64();
        let snap = g; // Copy
        let a: Vec<u64> = {
            let mut x = g;
            (0..10).map(|_| x.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut x = snap;
            (0..10).map(|_| x.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}

/// Fold one value into a running 64-bit digest (SplitMix-style finalizer).
///
/// This is the one mixing function used by every state digest in the
/// workspace (memory images, machine state, campaign-config fingerprints).
/// It is deliberately *not* `std::hash::DefaultHasher`, whose output is not
/// guaranteed stable across Rust releases — digests written into campaign
/// journals must stay comparable across binaries.
pub fn fold64(h: u64, v: u64) -> u64 {
    let mut z = h
        .rotate_left(25)
        .wrapping_add(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-site noise source: every `NOISE` instruction address owns an
/// independent deterministic stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteNoise {
    seed: u64,
    counters: HashMap<u64, u64>,
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(23) ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SiteNoise {
    /// Seeded source.
    pub fn new(seed: u64) -> SiteNoise {
        SiteNoise {
            seed,
            counters: HashMap::new(),
        }
    }

    /// Next value for the site at `rip`, uniform in `[0, bound)`
    /// (`bound == 0` acts as 1).
    pub fn next_at(&mut self, rip: u64, bound: u64) -> u64 {
        let c = self.counters.entry(rip).or_insert(0);
        let v = mix3(self.seed, rip, *c);
        *c += 1;
        v % bound.max(1)
    }

    /// Fold the noise state into a running digest. The counter map is
    /// HashMap-backed, so entries are folded in sorted key order to keep the
    /// digest independent of insertion history and hasher randomization.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        h = fold64(h, self.seed);
        let mut sites: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        sites.sort_unstable();
        for (rip, count) in sites {
            h = fold64(h, rip);
            h = fold64(h, count);
        }
        h
    }
}

#[cfg(test)]
mod site_tests {
    use super::*;

    #[test]
    fn sites_are_independent() {
        // Drawing extra values at site A must not change site B's stream.
        let mut a = SiteNoise::new(7);
        let mut b = SiteNoise::new(7);
        for _ in 0..10 {
            a.next_at(0x1000, 1000);
        }
        let va: Vec<u64> = (0..5).map(|_| a.next_at(0x2000, 1000)).collect();
        let vb: Vec<u64> = (0..5).map(|_| b.next_at(0x2000, 1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn per_site_streams_are_deterministic() {
        let mut a = SiteNoise::new(3);
        let mut b = SiteNoise::new(3);
        for i in 0..50 {
            let rip = 0x1000 + (i % 7) * 8;
            assert_eq!(a.next_at(rip, 97), b.next_at(rip, 97));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SiteNoise::new(1);
        let mut b = SiteNoise::new(2);
        let same = (0..32)
            .filter(|_| a.next_at(0x10, 1 << 30) == b.next_at(0x10, 1 << 30))
            .count();
        assert!(same < 2);
    }

    #[test]
    fn bounds_respected() {
        let mut a = SiteNoise::new(5);
        assert_eq!(a.next_at(8, 0), 0);
        for _ in 0..200 {
            assert!(a.next_at(16, 13) < 13);
        }
    }

    #[test]
    fn values_cover_range_roughly_uniformly() {
        let mut a = SiteNoise::new(9);
        let mut seen = [0usize; 8];
        for _ in 0..8000 {
            seen[a.next_at(24, 8) as usize] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 700, "bucket {i} underfilled: {n}");
        }
    }
}
