//! # sim-machine — full-system simulator substrate
//!
//! This crate is the reproduction's stand-in for the Simics full-system
//! simulator used in the Xentry paper (ICPP 2014). It implements a compact
//! x86-like, word-encoded instruction set together with:
//!
//! * a 16-register architectural file plus `RIP` and `RFLAGS`, matching the
//!   fault model of the paper (single bit flips in architectural registers,
//!   instruction and stack pointers, and flags);
//! * a region-based physical memory with read/write/execute permissions, so
//!   that corrupted pointers produce page faults and corrupted instruction
//!   pointers produce invalid-opcode or fetch faults;
//! * hardware exceptions (#DE, #UD, #PF, #GP, #AC, ...) reported to the
//!   harness exactly like the fatal-exception signals Xentry consumes;
//! * per-logical-CPU performance counters for the four events of Table I
//!   (`INST_RETIRED`, `BR_INST_RETIRED`, `MEM_INST_RETIRED.LOADS`,
//!   `MEM_INST_RETIRED.STORES`), start/stop controlled by the monitoring
//!   layer;
//! * VM exit / VM entry transitions between guest mode and host mode with a
//!   VMCS-like per-CPU exit-information block written by "hardware";
//! * deterministic snapshots for golden-run differencing during fault
//!   injection campaigns.
//!
//! The machine is intentionally deterministic: every run from the same
//! snapshot replays the same instruction stream, which is what makes the
//! paper's golden-run methodology possible.

pub mod cpu;
pub mod cycles;
pub mod exception;
pub mod exit;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod perf;
pub mod prng;
pub mod reg;
pub mod trace;

pub use cpu::{Cpu, CpuId, Mode};
pub use cycles::CycleModel;
pub use exception::{Exception, Vector};
pub use exit::ExitReason;
pub use insn::{Cond, DecodeError, Insn, Opcode};
pub use machine::{
    vmcs, Devices, Event, Machine, MachineConfig, MachineDelta, StepOutcome, VirtMode, VMCS_WORDS,
};
pub use mem::{
    MemError, Memory, MemoryDelta, PageMap, Perms, Region, RegionId, PAGE_BYTES, PTE_FRAME_MASK,
    PTE_PRESENT, PTE_RW,
};
pub use perf::{PerfCounters, PerfSample};
pub use prng::fold64;
pub use reg::Reg;
pub use trace::{step_traced, TraceEntry, TraceRing};
