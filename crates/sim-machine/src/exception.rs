//! Hardware exceptions.
//!
//! The paper's runtime detection consumes "fatal hardware exceptions" —
//! invalid opcode, fatal page fault, and friends — and must *parse* them to
//! filter out exceptions that are legal during correct execution (minor page
//! faults, guest #GP that the hypervisor traps for emulation). This module
//! defines the exception vectors (the classic x86 0..19 range the paper cites
//! as "19 exceptions ... handled by exception handlers") and the payload that
//! the detection layer inspects.

use serde::{Deserialize, Serialize};

/// x86-style exception vectors 0..=19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Vector {
    DivideError = 0,
    Debug = 1,
    Nmi = 2,
    Breakpoint = 3,
    Overflow = 4,
    BoundRange = 5,
    InvalidOpcode = 6,
    DeviceNotAvailable = 7,
    DoubleFault = 8,
    CoprocessorOverrun = 9,
    InvalidTss = 10,
    SegmentNotPresent = 11,
    StackFault = 12,
    GeneralProtection = 13,
    PageFault = 14,
    Reserved15 = 15,
    FpError = 16,
    AlignmentCheck = 17,
    MachineCheck = 18,
    SimdError = 19,
}

impl Vector {
    /// Number of architectural exception vectors the machine models — the
    /// paper's "19 exceptions are handled by exception handlers" (vectors
    /// 0..=19 minus the reserved one, but Xen registers a handler for each
    /// slot; we expose the full 20-slot table and treat 19 as handled).
    pub const COUNT: usize = 20;

    /// All vectors in numeric order.
    pub const ALL: [Vector; Vector::COUNT] = [
        Vector::DivideError,
        Vector::Debug,
        Vector::Nmi,
        Vector::Breakpoint,
        Vector::Overflow,
        Vector::BoundRange,
        Vector::InvalidOpcode,
        Vector::DeviceNotAvailable,
        Vector::DoubleFault,
        Vector::CoprocessorOverrun,
        Vector::InvalidTss,
        Vector::SegmentNotPresent,
        Vector::StackFault,
        Vector::GeneralProtection,
        Vector::PageFault,
        Vector::Reserved15,
        Vector::FpError,
        Vector::AlignmentCheck,
        Vector::MachineCheck,
        Vector::SimdError,
    ];

    /// Decode a vector number (values above 19 wrap to `Reserved15`, used
    /// when corrupted data is interpreted as a vector).
    pub fn from_u8(v: u8) -> Vector {
        Vector::ALL
            .get(v as usize)
            .copied()
            .unwrap_or(Vector::Reserved15)
    }

    /// Vector number.
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Short mnemonic for diagnostics (`#DE`, `#UD`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Vector::DivideError => "#DE",
            Vector::Debug => "#DB",
            Vector::Nmi => "#NMI",
            Vector::Breakpoint => "#BP",
            Vector::Overflow => "#OF",
            Vector::BoundRange => "#BR",
            Vector::InvalidOpcode => "#UD",
            Vector::DeviceNotAvailable => "#NM",
            Vector::DoubleFault => "#DF",
            Vector::CoprocessorOverrun => "#MF9",
            Vector::InvalidTss => "#TS",
            Vector::SegmentNotPresent => "#NP",
            Vector::StackFault => "#SS",
            Vector::GeneralProtection => "#GP",
            Vector::PageFault => "#PF",
            Vector::Reserved15 => "#R15",
            Vector::FpError => "#MF",
            Vector::AlignmentCheck => "#AC",
            Vector::MachineCheck => "#MC",
            Vector::SimdError => "#XM",
        }
    }
}

/// The kind of memory access that raised a fault, used by the fatal-exception
/// parser to distinguish instruction-fetch faults (always fatal in host mode)
/// from data faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
    Fetch,
}

/// A raised hardware exception together with the architectural state the
/// detection layer can inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exception {
    /// Exception vector.
    pub vector: Vector,
    /// `RIP` of the faulting instruction.
    pub rip: u64,
    /// Faulting linear address for #PF / #AC / #SS, if any.
    pub addr: Option<u64>,
    /// Access kind for memory faults.
    pub access: Option<AccessKind>,
}

impl Exception {
    /// A non-memory exception at `rip`.
    pub fn at(vector: Vector, rip: u64) -> Exception {
        Exception {
            vector,
            rip,
            addr: None,
            access: None,
        }
    }

    /// A memory-access exception.
    pub fn mem(vector: Vector, rip: u64, addr: u64, access: AccessKind) -> Exception {
        Exception {
            vector,
            rip,
            addr: Some(addr),
            access: Some(access),
        }
    }
}

impl std::fmt::Display for Exception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at rip={:#x}", self.vector.mnemonic(), self.rip)?;
        if let Some(a) = self.addr {
            write!(f, " addr={a:#x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_numbers_round_trip() {
        for v in Vector::ALL {
            assert_eq!(Vector::from_u8(v.number()), v);
        }
    }

    #[test]
    fn out_of_range_vector_maps_to_reserved() {
        assert_eq!(Vector::from_u8(200), Vector::Reserved15);
    }

    #[test]
    fn twenty_vector_slots() {
        assert_eq!(Vector::COUNT, 20);
        assert_eq!(Vector::ALL.len(), 20);
    }

    #[test]
    fn display_includes_mnemonic_and_addr() {
        let e = Exception::mem(Vector::PageFault, 0x1000, 0xdead0, AccessKind::Write);
        let s = e.to_string();
        assert!(s.contains("#PF"));
        assert!(s.contains("0xdead0"));
    }
}
