//! The machine: CPUs + memory + devices + world-switch "hardware".
//!
//! [`Machine::step`] executes one instruction on one logical CPU and reports
//! what happened. Mode transitions mirror Intel VMX:
//!
//! * a guest instruction that requires hypervisor service (hypercall, trapped
//!   exception, I/O exit, ...) performs a **VM exit**: hardware writes the
//!   guest `RIP`/`RSP`/`RFLAGS`, the exit reason and the exit qualification
//!   into a per-CPU VMCS block in memory, loads the host stack pointer and
//!   host entry point, and switches to host mode;
//! * the host `VMENTRY` instruction performs a **VM entry**: hardware loads
//!   guest `RIP`/`RSP`/`RFLAGS` back from the VMCS block.
//!
//! General-purpose registers are *not* switched by hardware — hypervisor
//! entry/exit stubs (simulated code built by `xen-like`) save and restore
//! them, exactly like Xen's assembly stubs. That detail is what lets injected
//! faults corrupt "stack values ... pushed to or restored from the stack"
//! (the paper's Table II undetected category).

use crate::cpu::{Cpu, CpuId, Mode};
use crate::cycles::CycleModel;
use crate::exception::{AccessKind, Exception, Vector};
use crate::exit::ExitReason;
use crate::insn::{Cond, DecodeError, Insn};
use crate::mem::{MemError, Memory};
use crate::prng::SiteNoise;
use crate::reg::{flags, Reg};
use serde::{Deserialize, Serialize};

/// Words per CPU in the VMCS block.
pub const VMCS_WORDS: u64 = 5;
/// VMCS field offsets (in words).
pub mod vmcs {
    /// Guest instruction pointer at exit / to load at entry.
    pub const GUEST_RIP: u64 = 0;
    /// Guest stack pointer.
    pub const GUEST_RSP: u64 = 1;
    /// Guest flags.
    pub const GUEST_RFLAGS: u64 = 2;
    /// Dense exit-reason code ([`crate::ExitReason::vmer`]).
    pub const EXIT_REASON: u64 = 3;
    /// Exit qualification (fault address, I/O port, hypercall number...).
    pub const EXIT_QUAL: u64 = 4;
}

/// Whether guests run para-virtualized or hardware-assisted. The paper
/// evaluates both (Fig. 3); they differ in how privileged instructions reach
/// the hypervisor (trap via #GP vs. direct VM exits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtMode {
    /// Para-virtualization: CPUID/RDTSC raise #GP which the hypervisor traps
    /// and emulates; port I/O from guests is forbidden (#GP).
    Para,
    /// Hardware-assisted: CPUID/RDTSC/IN/OUT/HLT exit directly.
    Hvm,
}

/// Static machine configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of logical CPUs.
    pub nr_cpus: usize,
    /// Host-mode entry point loaded by hardware at every VM exit. CPU `i`
    /// enters at `host_entry + i * host_entry_stride`, which lets the
    /// hypervisor lay down per-CPU trampolines that establish the per-CPU
    /// data pointer (the analogue of Xen's per-CPU %gs base).
    pub host_entry: u64,
    /// Byte distance between per-CPU entry trampolines (0 = shared entry).
    pub host_entry_stride: u64,
    /// Base address of per-CPU host stacks; CPU `i` gets
    /// `host_stack_base + (i + 1) * host_stack_size` as its stack top.
    pub host_stack_base: u64,
    /// Host stack size in bytes per CPU.
    pub host_stack_size: u64,
    /// Base address of the per-CPU VMCS blocks.
    pub vmcs_base: u64,
    /// Guest virtualization flavour.
    pub virt_mode: VirtMode,
    /// Cycle cost model.
    pub cycle_model: CycleModel,
}

impl MachineConfig {
    /// Initial host stack pointer for `cpu` (stacks grow down).
    pub fn host_stack_top(&self, cpu: CpuId) -> u64 {
        self.host_stack_base + (cpu as u64 + 1) * self.host_stack_size
    }

    /// Host entry point for `cpu` (per-CPU trampoline).
    pub fn host_entry_for(&self, cpu: CpuId) -> u64 {
        self.host_entry + cpu as u64 * self.host_entry_stride
    }

    /// Address of a VMCS field for `cpu`.
    pub fn vmcs_field(&self, cpu: CpuId, field: u64) -> u64 {
        self.vmcs_base + (cpu as u64 * VMCS_WORDS + field) * 8
    }
}

/// Deterministic port-I/O device model. Reads mix the port with a
/// per-port sequence number so values are reproducible from a snapshot and
/// independent across ports; writes are folded into a running hash so
/// golden-run differencing can detect corrupted device output.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Devices {
    /// Number of OUT operations performed.
    pub out_count: u64,
    /// Per-port IN sequence numbers.
    pub in_counts: std::collections::HashMap<u16, u64>,
    /// Running hash of all (port, value) writes.
    pub out_hash: u64,
}

impl Devices {
    fn mix(a: u64, b: u64) -> u64 {
        let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    /// Record a port write.
    pub fn write(&mut self, port: u16, value: u64) {
        self.out_count += 1;
        self.out_hash = Devices::mix(
            self.out_hash,
            (port as u64) << 48 | (value & 0xffff_ffff_ffff),
        );
    }

    /// Produce a deterministic port read value (per-port stream).
    pub fn read(&mut self, port: u16) -> u64 {
        let c = self.in_counts.entry(port).or_insert(0);
        *c += 1;
        Devices::mix(*c, port as u64)
    }
}

/// What a single [`Machine::step`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired normally; execution continues.
    Retired,
    /// Something the harness must handle.
    Event(Event),
}

/// Events surfaced to the orchestration layer (the hypervisor platform and
/// the Xentry shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Guest → host transition completed; the CPU now sits at the host entry
    /// point with the VMCS block filled in.
    VmExit(ExitReason),
    /// Host executed VMENTRY; guest RIP/RSP/RFLAGS were loaded from the
    /// VMCS. The orchestrator must set the CPU's guest mode (it knows which
    /// VCPU the hypervisor scheduled).
    VmEntry,
    /// A hardware exception was raised in **host mode** — the raw signal the
    /// Xentry runtime detector parses. The CPU is left at the faulting
    /// instruction.
    Exception(Exception),
    /// A software assertion in hypervisor code failed (host mode only).
    AssertFail { id: u16, rip: u64 },
    /// Host executed HLT (idle); resume by injecting an interrupt.
    Halt,
}

/// Sparse difference between two [`Machine`] states that descend from one
/// boot image. CPU, device and noise state are small and copied whole; the
/// memory image — the bulk of a snapshot — is delta-compressed. Used by the
/// fault-injection campaign's checkpoint chain, where consecutive
/// checkpoints share almost the entire memory image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDelta {
    /// Full CPU states (a handful of registers each).
    pub cpus: Vec<Cpu>,
    /// Full noise-source state (seed + per-site counters).
    pub noise: SiteNoise,
    /// Full device state.
    pub devices: Devices,
    /// Sparse memory difference.
    pub mem: crate::mem::MemoryDelta,
}

impl MachineDelta {
    /// Number of memory words carried by this delta.
    pub fn mem_words(&self) -> usize {
        self.mem.len()
    }
}

/// The simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Physical memory.
    pub mem: Memory,
    /// Logical CPUs.
    cpus: Vec<Cpu>,
    /// Workload-variability source backing the `NOISE` instruction
    /// (independent deterministic stream per instruction address).
    pub noise: SiteNoise,
    /// Port-I/O devices.
    pub devices: Devices,
    /// Static configuration.
    pub config: MachineConfig,
}

impl Machine {
    /// Build a machine. Memory must already contain the regions the config
    /// points into (host stacks, VMCS block); the loader asserts this.
    pub fn new(config: MachineConfig, mem: Memory, seed: u64) -> Machine {
        let cpus = (0..config.nr_cpus)
            .map(|i| {
                let mut c = Cpu::new();
                c.rip = config.host_entry_for(i);
                c.set(Reg::Rsp, config.host_stack_top(i));
                c
            })
            .collect();
        Machine {
            mem,
            cpus,
            noise: SiteNoise::new(seed),
            devices: Devices::default(),
            config,
        }
    }

    /// Immutable CPU access.
    pub fn cpu(&self, id: CpuId) -> &Cpu {
        &self.cpus[id]
    }

    /// Mutable CPU access (fault injection, orchestration).
    pub fn cpu_mut(&mut self, id: CpuId) -> &mut Cpu {
        &mut self.cpus[id]
    }

    /// Number of CPUs.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Snapshot the whole machine (for golden-run differencing).
    pub fn snapshot(&self) -> Machine {
        self.clone()
    }

    /// Delta-compress `self` against `base` (an earlier state of the same
    /// booted machine). `base.apply_delta(&d)` reproduces `self` exactly.
    pub fn delta_against(&self, base: &Machine) -> MachineDelta {
        debug_assert_eq!(self.config, base.config, "deltas cross machine configs");
        MachineDelta {
            cpus: self.cpus.clone(),
            noise: self.noise.clone(),
            devices: self.devices.clone(),
            mem: self.mem.delta_from(&base.mem),
        }
    }

    /// Apply a delta produced by [`Machine::delta_against`] whose base was
    /// this exact state, advancing `self` to the recorded state.
    pub fn apply_delta(&mut self, delta: &MachineDelta) {
        self.cpus = delta.cpus.clone();
        self.noise = delta.noise.clone();
        self.devices = delta.devices.clone();
        self.mem.apply_delta(&delta.mem);
    }

    /// Deterministic digest of the complete dynamic state: CPUs (registers,
    /// flags, mode, PMU, cycle and instruction counters), memory image,
    /// noise streams and device state. Two machines with equal digests are
    /// indistinguishable to simulated code; the campaign determinism and
    /// snapshot round-trip tests compare these. HashMap-backed state (noise
    /// counters, per-port IN sequences) is folded in sorted key order.
    pub fn state_digest(&self) -> u64 {
        use crate::prng::fold64;
        let mut h = fold64(0x006d_6163_6869_6e65, self.cpus.len() as u64); // "machine"
        for c in &self.cpus {
            for &r in &c.regs {
                h = fold64(h, r);
            }
            h = fold64(h, c.rip);
            h = fold64(h, c.rflags);
            h = fold64(
                h,
                match c.mode {
                    Mode::Host => u64::MAX,
                    Mode::Guest { dom, vcpu } => (dom as u64) << 16 | vcpu as u64,
                },
            );
            let s = c.perf.sample();
            h = fold64(h, c.perf.enabled() as u64);
            h = fold64(h, s.inst_retired);
            h = fold64(h, s.branches);
            h = fold64(h, s.loads);
            h = fold64(h, s.stores);
            h = fold64(h, c.cycles);
            h = fold64(h, c.insns_retired);
        }
        h = fold64(h, self.mem.digest());
        h = self.noise.fold_digest(h);
        h = fold64(h, self.devices.out_count);
        h = fold64(h, self.devices.out_hash);
        let mut ports: Vec<(u16, u64)> = self
            .devices
            .in_counts
            .iter()
            .map(|(&p, &c)| (p, c))
            .collect();
        ports.sort_unstable();
        for (p, c) in ports {
            h = fold64(h, p as u64);
            h = fold64(h, c);
        }
        h
    }

    /// Perform the hardware part of a VM exit on `cpu`: fill the VMCS block,
    /// load host RSP/RIP, switch to host mode. `guest_rip` is the resume
    /// point to record (already advanced past trap-like instructions).
    fn hw_vm_exit(&mut self, cpu: CpuId, reason: ExitReason, guest_rip: u64, qual: u64) -> Event {
        let cfg = self.config.clone();
        let c = &mut self.cpus[cpu];
        let guest_rsp = c.get(Reg::Rsp);
        let guest_rflags = c.rflags;
        c.mode = Mode::Host;
        c.rip = cfg.host_entry_for(cpu);
        c.set(Reg::Rsp, cfg.host_stack_top(cpu));
        c.cycles += cfg.cycle_model.vm_exit;
        // VMCS writes are "microcode": they bypass page permissions but the
        // block must be mapped.
        self.mem
            .poke(cfg.vmcs_field(cpu, vmcs::GUEST_RIP), guest_rip)
            .expect("VMCS mapped");
        self.mem
            .poke(cfg.vmcs_field(cpu, vmcs::GUEST_RSP), guest_rsp)
            .expect("VMCS mapped");
        self.mem
            .poke(cfg.vmcs_field(cpu, vmcs::GUEST_RFLAGS), guest_rflags)
            .expect("VMCS mapped");
        self.mem
            .poke(cfg.vmcs_field(cpu, vmcs::EXIT_REASON), reason.vmer() as u64)
            .expect("VMCS mapped");
        self.mem
            .poke(cfg.vmcs_field(cpu, vmcs::EXIT_QUAL), qual)
            .expect("VMCS mapped");
        Event::VmExit(reason)
    }

    /// Inject an asynchronous VM exit (device/APIC interrupt, pending
    /// softirq) while `cpu` is in guest mode. The guest resumes at the
    /// current instruction after the hypervisor handles the interrupt.
    ///
    /// # Panics
    /// If the CPU is in host mode — asynchronous events arriving during
    /// hypervisor execution are queued by the platform, not injected.
    pub fn force_exit(&mut self, cpu: CpuId, reason: ExitReason) -> Event {
        assert!(
            !self.cpus[cpu].mode.is_host(),
            "force_exit requires guest mode; host-mode interrupts are queued"
        );
        let rip = self.cpus[cpu].rip;
        self.hw_vm_exit(cpu, reason, rip, 0)
    }

    /// Raise an exception observed on `cpu`: in guest mode it becomes a VM
    /// exit (the hypervisor traps guest exceptions); in host mode it is
    /// surfaced to the harness.
    fn raise(&mut self, cpu: CpuId, e: Exception) -> Event {
        if self.cpus[cpu].mode.is_host() {
            Event::Exception(e)
        } else {
            let qual = e.addr.unwrap_or(0);
            self.hw_vm_exit(cpu, ExitReason::Exception(e.vector), e.rip, qual)
        }
    }

    fn mem_error_to_exception(e: MemError, rip: u64, access: AccessKind) -> Exception {
        match e {
            MemError::Unmapped { addr } | MemError::Protection { addr } => {
                Exception::mem(Vector::PageFault, rip, addr, access)
            }
            MemError::Unaligned { addr } => {
                Exception::mem(Vector::AlignmentCheck, rip, addr, access)
            }
        }
    }

    /// CPUID model: a fixed deterministic function of the leaf. The #GP
    /// emulation path in the hypervisor must reproduce these values — the
    /// paper's running example of long-latency error propagation is a
    /// corrupted emulated `eax`.
    pub fn cpuid_model(leaf: u64) -> [u64; 4] {
        let m = |s: u64| {
            let mut z = leaf.wrapping_add(s).wrapping_mul(0x2545_F491_4F6C_DD1D);
            z ^= z >> 29;
            z
        };
        [m(1), m(2), m(3), m(4)]
    }

    /// Execute one instruction on `cpu`.
    pub fn step(&mut self, cpu: CpuId) -> StepOutcome {
        let pc = self.cpus[cpu].rip;
        let word = match self.mem.fetch(pc) {
            Ok(w) => w,
            Err(e) => {
                let exc = Machine::mem_error_to_exception(e, pc, AccessKind::Fetch);
                return StepOutcome::Event(self.raise(cpu, exc));
            }
        };
        let insn = match Insn::decode(word) {
            Ok(i) => i,
            Err(DecodeError::BadOpcode(_)) | Err(DecodeError::BadOperand(_)) => {
                return StepOutcome::Event(
                    self.raise(cpu, Exception::at(Vector::InvalidOpcode, pc)),
                );
            }
        };
        self.execute(cpu, pc, insn)
    }

    fn set_flags_sub(c: &mut Cpu, a: u64, b: u64) {
        let (res, carry) = a.overflowing_sub(b);
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (res as i64) < 0;
        let of = (sa != sb) && (sr != sa);
        let mut f = c.rflags & !flags::ALL;
        if res == 0 {
            f |= flags::ZF;
        }
        if sr {
            f |= flags::SF;
        }
        if carry {
            f |= flags::CF;
        }
        if of {
            f |= flags::OF;
        }
        c.rflags = f;
    }

    fn set_flags_logic(c: &mut Cpu, res: u64) {
        let mut f = c.rflags & !flags::ALL;
        if res == 0 {
            f |= flags::ZF;
        }
        if (res as i64) < 0 {
            f |= flags::SF;
        }
        c.rflags = f;
    }

    fn cond_holds(c: &Cpu, cond: Cond) -> bool {
        let zf = c.rflags & flags::ZF != 0;
        let sf = c.rflags & flags::SF != 0;
        let of = c.rflags & flags::OF != 0;
        let cf = c.rflags & flags::CF != 0;
        match cond {
            Cond::Eq => zf,
            Cond::Ne => !zf,
            Cond::Lt => sf != of,
            Cond::Ge => sf == of,
            Cond::Gt => !zf && (sf == of),
            Cond::Le => zf || (sf != of),
            Cond::B => cf,
            Cond::Ae => !cf,
        }
    }

    /// Retire bookkeeping: PMU events, cycles, dynamic instruction count.
    fn retire(&mut self, cpu: CpuId, insn: &Insn, taken_branch: bool) {
        let reads = insn.mem_reads();
        let writes = insn.mem_writes();
        let c = &mut self.cpus[cpu];
        c.perf.record(insn.is_branch(), reads, writes);
        c.cycles += self
            .config
            .cycle_model
            .insn_cost(reads + writes, taken_branch);
        c.insns_retired += 1;
    }

    fn execute(&mut self, cpu: CpuId, pc: u64, insn: Insn) -> StepOutcome {
        use Insn::*;
        let is_host = self.cpus[cpu].mode.is_host();
        let virt = self.config.virt_mode;
        // Default next-RIP; control transfers overwrite.
        let mut next = pc.wrapping_add(8);
        let mut taken = false;

        macro_rules! fault {
            ($e:expr) => {
                return StepOutcome::Event(self.raise(cpu, $e))
            };
        }

        match insn {
            MovImm { dst, imm } => self.cpus[cpu].set(dst, imm as u64),
            MovReg { dst, src } => {
                let v = self.cpus[cpu].get(src);
                self.cpus[cpu].set(dst, v);
            }
            Load { dst, base, off } => {
                let addr = self.cpus[cpu].get(base).wrapping_add(off as u64);
                match self.mem.read_v(addr) {
                    Ok(v) => self.cpus[cpu].set(dst, v),
                    Err(e) => fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Read)),
                }
            }
            Store { base, src, off } => {
                let addr = self.cpus[cpu].get(base).wrapping_add(off as u64);
                let v = self.cpus[cpu].get(src);
                if let Err(e) = self.mem.write_v(addr, v) {
                    fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Write));
                }
            }
            Add { dst, src } => {
                let v = self.cpus[cpu]
                    .get(dst)
                    .wrapping_add(self.cpus[cpu].get(src));
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            AddImm { dst, imm } => {
                let v = self.cpus[cpu].get(dst).wrapping_add(imm as u64);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            Sub { dst, src } => {
                let a = self.cpus[cpu].get(dst);
                let b = self.cpus[cpu].get(src);
                Machine::set_flags_sub(&mut self.cpus[cpu], a, b);
                self.cpus[cpu].set(dst, a.wrapping_sub(b));
            }
            SubImm { dst, imm } => {
                let a = self.cpus[cpu].get(dst);
                let b = imm as u64;
                Machine::set_flags_sub(&mut self.cpus[cpu], a, b);
                self.cpus[cpu].set(dst, a.wrapping_sub(b));
            }
            Mul { dst, src } => {
                let v = self.cpus[cpu]
                    .get(dst)
                    .wrapping_mul(self.cpus[cpu].get(src));
                self.cpus[cpu].set(dst, v);
            }
            Div { dst, src } => {
                let b = self.cpus[cpu].get(src);
                if b == 0 {
                    fault!(Exception::at(Vector::DivideError, pc));
                }
                let v = self.cpus[cpu].get(dst) / b;
                self.cpus[cpu].set(dst, v);
            }
            Rem { dst, src } => {
                let b = self.cpus[cpu].get(src);
                if b == 0 {
                    fault!(Exception::at(Vector::DivideError, pc));
                }
                let v = self.cpus[cpu].get(dst) % b;
                self.cpus[cpu].set(dst, v);
            }
            And { dst, src } => {
                let v = self.cpus[cpu].get(dst) & self.cpus[cpu].get(src);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            Or { dst, src } => {
                let v = self.cpus[cpu].get(dst) | self.cpus[cpu].get(src);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            Xor { dst, src } => {
                let v = self.cpus[cpu].get(dst) ^ self.cpus[cpu].get(src);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            ShlImm { dst, imm } => {
                let v = self.cpus[cpu].get(dst) << (imm & 63);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            ShrImm { dst, imm } => {
                let v = self.cpus[cpu].get(dst) >> (imm & 63);
                self.cpus[cpu].set(dst, v);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            Cmp { a, b } => {
                let x = self.cpus[cpu].get(a);
                let y = self.cpus[cpu].get(b);
                Machine::set_flags_sub(&mut self.cpus[cpu], x, y);
            }
            CmpImm { a, imm } => {
                let x = self.cpus[cpu].get(a);
                Machine::set_flags_sub(&mut self.cpus[cpu], x, imm as u64);
            }
            Test { a, b } => {
                let v = self.cpus[cpu].get(a) & self.cpus[cpu].get(b);
                Machine::set_flags_logic(&mut self.cpus[cpu], v);
            }
            Jmp { target } => {
                next = target;
                taken = true;
            }
            Jcc { cond, target } => {
                if Machine::cond_holds(&self.cpus[cpu], cond) {
                    next = target;
                    taken = true;
                }
            }
            Call { target } => {
                let rsp = self.cpus[cpu].rsp().wrapping_sub(8);
                if let Err(e) = self.mem.write_v(rsp, pc.wrapping_add(8)) {
                    fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Write));
                }
                self.cpus[cpu].set(Reg::Rsp, rsp);
                next = target;
                taken = true;
            }
            Ret => {
                let rsp = self.cpus[cpu].rsp();
                match self.mem.read_v(rsp) {
                    Ok(ra) => {
                        self.cpus[cpu].set(Reg::Rsp, rsp.wrapping_add(8));
                        next = ra;
                        taken = true;
                    }
                    Err(e) => fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Read)),
                }
            }
            Push { src } => {
                let rsp = self.cpus[cpu].rsp().wrapping_sub(8);
                let v = self.cpus[cpu].get(src);
                if let Err(e) = self.mem.write_v(rsp, v) {
                    fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Write));
                }
                self.cpus[cpu].set(Reg::Rsp, rsp);
            }
            Pop { dst } => {
                let rsp = self.cpus[cpu].rsp();
                match self.mem.read_v(rsp) {
                    Ok(v) => {
                        self.cpus[cpu].set(dst, v);
                        self.cpus[cpu].set(Reg::Rsp, rsp.wrapping_add(8));
                    }
                    Err(e) => fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Read)),
                }
            }
            JmpReg { target } => {
                next = self.cpus[cpu].get(target);
                taken = true;
            }
            CallReg { target } => {
                let dest = self.cpus[cpu].get(target);
                let rsp = self.cpus[cpu].rsp().wrapping_sub(8);
                if let Err(e) = self.mem.write_v(rsp, pc.wrapping_add(8)) {
                    fault!(Machine::mem_error_to_exception(e, pc, AccessKind::Write));
                }
                self.cpus[cpu].set(Reg::Rsp, rsp);
                next = dest;
                taken = true;
            }
            Cpuid => {
                if is_host {
                    let leaf = self.cpus[cpu].get(Reg::Rax);
                    let out = Machine::cpuid_model(leaf);
                    self.cpus[cpu].set(Reg::Rax, out[0]);
                    self.cpus[cpu].set(Reg::Rbx, out[1]);
                    self.cpus[cpu].set(Reg::Rcx, out[2]);
                    self.cpus[cpu].set(Reg::Rdx, out[3]);
                } else {
                    return match virt {
                        VirtMode::Para => StepOutcome::Event(
                            self.raise(cpu, Exception::at(Vector::GeneralProtection, pc)),
                        ),
                        VirtMode::Hvm => StepOutcome::Event(self.hw_vm_exit(
                            cpu,
                            ExitReason::CpuidExit,
                            pc.wrapping_add(8),
                            self.cpus[cpu].get(Reg::Rax),
                        )),
                    };
                }
            }
            Rdtsc => {
                if is_host {
                    let t = self.cpus[cpu].cycles;
                    self.cpus[cpu].set(Reg::Rax, t & 0xffff_ffff);
                    self.cpus[cpu].set(Reg::Rdx, t >> 32);
                } else {
                    return match virt {
                        VirtMode::Para => StepOutcome::Event(
                            self.raise(cpu, Exception::at(Vector::GeneralProtection, pc)),
                        ),
                        VirtMode::Hvm => StepOutcome::Event(self.hw_vm_exit(
                            cpu,
                            ExitReason::RdtscExit,
                            pc.wrapping_add(8),
                            0,
                        )),
                    };
                }
            }
            Hypercall { nr } => {
                if is_host {
                    fault!(Exception::at(Vector::InvalidOpcode, pc));
                }
                return StepOutcome::Event(self.hw_vm_exit(
                    cpu,
                    ExitReason::Hypercall(nr % crate::exit::NR_HYPERCALLS),
                    pc.wrapping_add(8),
                    nr as u64,
                ));
            }
            VmEntry => {
                if !is_host {
                    fault!(Exception::at(Vector::GeneralProtection, pc));
                }
                let cfg = self.config.clone();
                let grip = self
                    .mem
                    .peek(cfg.vmcs_field(cpu, vmcs::GUEST_RIP))
                    .expect("VMCS");
                let grsp = self
                    .mem
                    .peek(cfg.vmcs_field(cpu, vmcs::GUEST_RSP))
                    .expect("VMCS");
                let gfl = self
                    .mem
                    .peek(cfg.vmcs_field(cpu, vmcs::GUEST_RFLAGS))
                    .expect("VMCS");
                let c = &mut self.cpus[cpu];
                c.rip = grip;
                c.set(Reg::Rsp, grsp);
                c.rflags = gfl;
                c.cycles += cfg.cycle_model.vm_entry;
                // Mode switch to Guest is performed by the orchestrator,
                // which knows (from the hypervisor's scheduling state) which
                // VCPU is being resumed.
                self.retire(cpu, &insn, true);
                return StepOutcome::Event(Event::VmEntry);
            }
            Hlt => {
                if is_host {
                    self.cpus[cpu].rip = next;
                    self.retire(cpu, &insn, false);
                    return StepOutcome::Event(Event::Halt);
                }
                return match virt {
                    VirtMode::Para => StepOutcome::Event(self.hw_vm_exit(
                        cpu,
                        ExitReason::Hypercall(29), // PV guests yield via sched_op
                        pc.wrapping_add(8),
                        0,
                    )),
                    VirtMode::Hvm => StepOutcome::Event(self.hw_vm_exit(
                        cpu,
                        ExitReason::HltExit,
                        pc.wrapping_add(8),
                        0,
                    )),
                };
            }
            Nop => {}
            AssertFail { id } => {
                if is_host {
                    return StepOutcome::Event(Event::AssertFail { id, rip: pc });
                }
                fault!(Exception::at(Vector::InvalidOpcode, pc));
            }
            Out { port, src } => {
                if is_host {
                    let v = self.cpus[cpu].get(src);
                    self.devices.write(port, v);
                } else {
                    return match virt {
                        VirtMode::Para => StepOutcome::Event(
                            self.raise(cpu, Exception::at(Vector::GeneralProtection, pc)),
                        ),
                        VirtMode::Hvm => StepOutcome::Event(self.hw_vm_exit(
                            cpu,
                            ExitReason::IoInstruction { port, write: true },
                            pc.wrapping_add(8),
                            port as u64,
                        )),
                    };
                }
            }
            In { dst, port } => {
                if is_host {
                    let v = self.devices.read(port);
                    self.cpus[cpu].set(dst, v);
                } else {
                    return match virt {
                        VirtMode::Para => StepOutcome::Event(
                            self.raise(cpu, Exception::at(Vector::GeneralProtection, pc)),
                        ),
                        VirtMode::Hvm => StepOutcome::Event(self.hw_vm_exit(
                            cpu,
                            ExitReason::IoInstruction { port, write: false },
                            pc.wrapping_add(8),
                            port as u64,
                        )),
                    };
                }
            }
            Noise { dst, bound } => {
                let v = self.noise.next_at(pc, bound);
                self.cpus[cpu].set(dst, v);
            }
        }

        self.cpus[cpu].rip = next;
        self.retire(cpu, &insn, taken);
        StepOutcome::Retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perms;

    fn test_config() -> MachineConfig {
        MachineConfig {
            nr_cpus: 1,
            host_entry: 0x1_0000,
            host_entry_stride: 0,
            host_stack_base: 0x2_0000,
            host_stack_size: 0x1000,
            vmcs_base: 0x3_0000,
            virt_mode: VirtMode::Para,
            cycle_model: CycleModel::default(),
        }
    }

    fn test_machine(code: &[Insn]) -> Machine {
        let cfg = test_config();
        let mut mem = Memory::new();
        mem.map("hv.text", cfg.host_entry, 4096, Perms::RX);
        mem.map("hv.stack", cfg.host_stack_base, 512, Perms::RW);
        mem.map("vmcs", cfg.vmcs_base, 64, Perms::RW);
        mem.map("hv.data", 0x4_0000, 1024, Perms::RW);
        mem.map("guest.text", 0x10_0000, 1024, Perms::RX);
        let words: Vec<u64> = code.iter().map(|i| i.encode()).collect();
        mem.load_image(cfg.host_entry, &words).unwrap();
        Machine::new(cfg, mem, 7)
    }

    fn run_steps(m: &mut Machine, n: usize) -> Vec<StepOutcome> {
        (0..n).map(|_| m.step(0)).collect()
    }

    #[test]
    fn mov_add_retires_and_counts_cycles() {
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rax,
                imm: 40,
            },
            Insn::AddImm {
                dst: Reg::Rax,
                imm: 2,
            },
        ]);
        m.cpu_mut(0).perf.start();
        for o in run_steps(&mut m, 2) {
            assert_eq!(o, StepOutcome::Retired);
        }
        assert_eq!(m.cpu(0).get(Reg::Rax), 42);
        assert_eq!(m.cpu(0).perf.sample().inst_retired, 2);
        assert!(m.cpu(0).cycles >= 2);
        assert_eq!(m.cpu(0).insns_retired, 2);
    }

    #[test]
    fn load_store_round_trip_and_pmc_events() {
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rbx,
                imm: 0x4_0000,
            },
            Insn::MovImm {
                dst: Reg::Rax,
                imm: 0x99,
            },
            Insn::Store {
                base: Reg::Rbx,
                src: Reg::Rax,
                off: 8,
            },
            Insn::Load {
                dst: Reg::Rcx,
                base: Reg::Rbx,
                off: 8,
            },
        ]);
        m.cpu_mut(0).perf.start();
        run_steps(&mut m, 4);
        assert_eq!(m.cpu(0).get(Reg::Rcx), 0x99);
        let s = m.cpu(0).perf.sample();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.inst_retired, 4);
    }

    #[test]
    fn division_by_zero_raises_de_in_host() {
        let mut m = test_machine(&[Insn::Div {
            dst: Reg::Rax,
            src: Reg::Rbx,
        }]);
        match m.step(0) {
            StepOutcome::Event(Event::Exception(e)) => {
                assert_eq!(e.vector, Vector::DivideError);
            }
            other => panic!("expected #DE, got {other:?}"),
        }
    }

    #[test]
    fn unmapped_load_raises_pf_in_host() {
        let mut m = test_machine(&[Insn::Load {
            dst: Reg::Rax,
            base: Reg::Rbx,
            off: 0,
        }]);
        // rbx == 0 → null-page access.
        match m.step(0) {
            StepOutcome::Event(Event::Exception(e)) => {
                assert_eq!(e.vector, Vector::PageFault);
                assert_eq!(e.addr, Some(0));
            }
            other => panic!("expected #PF, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_rip_fetches_invalid_opcode() {
        let mut m = test_machine(&[Insn::Nop]);
        // Point RIP at a zero-filled word inside the executable region:
        // word 0 decodes to #UD (fetching a non-exec region would be #PF).
        m.cpu_mut(0).rip = 0x1_0000 + 0x800;
        match m.step(0) {
            StepOutcome::Event(Event::Exception(e)) => {
                assert_eq!(e.vector, Vector::InvalidOpcode);
            }
            other => panic!("expected #UD, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_rip_into_unmapped_space_is_fetch_fault() {
        let mut m = test_machine(&[Insn::Nop]);
        m.cpu_mut(0).rip = 0xdead_0000;
        match m.step(0) {
            StepOutcome::Event(Event::Exception(e)) => {
                assert_eq!(e.vector, Vector::PageFault);
                assert_eq!(e.access, Some(AccessKind::Fetch));
            }
            other => panic!("expected fetch #PF, got {other:?}"),
        }
    }

    #[test]
    fn call_ret_uses_stack() {
        let e = 0x1_0000u64;
        let mut m = test_machine(&[
            Insn::Call { target: e + 3 * 8 }, // call f
            Insn::MovImm {
                dst: Reg::Rbx,
                imm: 7,
            }, // after return
            Insn::Hlt,
            Insn::MovImm {
                dst: Reg::Rax,
                imm: 5,
            }, // f:
            Insn::Ret,
        ]);
        let outs = run_steps(&mut m, 4);
        assert!(outs.iter().take(4).all(|o| *o == StepOutcome::Retired));
        assert_eq!(m.cpu(0).get(Reg::Rax), 5);
        assert_eq!(m.cpu(0).get(Reg::Rbx), 7);
        assert_eq!(m.cpu(0).rsp(), m.config.host_stack_top(0));
    }

    #[test]
    fn conditional_branch_signed_semantics() {
        let e = 0x1_0000u64;
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rax,
                imm: -5,
            },
            Insn::CmpImm {
                a: Reg::Rax,
                imm: 3,
            },
            Insn::Jcc {
                cond: Cond::Lt,
                target: e + 4 * 8,
            },
            Insn::MovImm {
                dst: Reg::Rbx,
                imm: 111,
            }, // skipped
            Insn::MovImm {
                dst: Reg::Rcx,
                imm: 222,
            },
        ]);
        run_steps(&mut m, 4);
        assert_eq!(m.cpu(0).get(Reg::Rbx), 0, "not-taken path must be skipped");
        assert_eq!(m.cpu(0).get(Reg::Rcx), 222);
    }

    #[test]
    fn unsigned_below_uses_carry() {
        let e = 0x1_0000u64;
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rax,
                imm: -5,
            }, // huge unsigned
            Insn::CmpImm {
                a: Reg::Rax,
                imm: 3,
            },
            Insn::Jcc {
                cond: Cond::B,
                target: e + 4 * 8,
            }, // NOT below
            Insn::MovImm {
                dst: Reg::Rbx,
                imm: 1,
            },
            Insn::Nop,
        ]);
        run_steps(&mut m, 4);
        assert_eq!(m.cpu(0).get(Reg::Rbx), 1, "unsigned -5 is not below 3");
    }

    #[test]
    fn hypercall_from_guest_exits_with_reason_and_vmcs() {
        let mut m = test_machine(&[Insn::Nop]);
        // Place guest code.
        let g = 0x10_0000u64;
        m.mem
            .load_image(g, &[Insn::Hypercall { nr: 29 }.encode()])
            .unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        m.cpu_mut(0).set(Reg::Rsp, 0x4_0000 + 512 * 8);
        match m.step(0) {
            StepOutcome::Event(Event::VmExit(ExitReason::Hypercall(29))) => {}
            other => panic!("expected hypercall exit, got {other:?}"),
        }
        assert!(m.cpu(0).mode.is_host());
        assert_eq!(m.cpu(0).rip, m.config.host_entry);
        assert_eq!(m.cpu(0).rsp(), m.config.host_stack_top(0));
        let cfg = m.config.clone();
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RIP)).unwrap(),
            g + 8
        );
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::EXIT_REASON)).unwrap(),
            ExitReason::Hypercall(29).vmer() as u64
        );
    }

    #[test]
    fn pv_guest_cpuid_traps_as_gp_exit() {
        let mut m = test_machine(&[Insn::Nop]);
        let g = 0x10_0000u64;
        m.mem.load_image(g, &[Insn::Cpuid.encode()]).unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        match m.step(0) {
            StepOutcome::Event(Event::VmExit(ExitReason::Exception(Vector::GeneralProtection))) => {
            }
            other => panic!("expected #GP exit, got {other:?}"),
        }
        // Fault-like exit: guest RIP in the VMCS points at the CPUID itself.
        let cfg = m.config.clone();
        assert_eq!(m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RIP)).unwrap(), g);
    }

    #[test]
    fn hvm_guest_cpuid_exits_directly() {
        let mut m = test_machine(&[Insn::Nop]);
        m.config.virt_mode = VirtMode::Hvm;
        let g = 0x10_0000u64;
        m.mem.load_image(g, &[Insn::Cpuid.encode()]).unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        match m.step(0) {
            StepOutcome::Event(Event::VmExit(ExitReason::CpuidExit)) => {}
            other => panic!("expected cpuid exit, got {other:?}"),
        }
        let cfg = m.config.clone();
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RIP)).unwrap(),
            g + 8
        );
    }

    #[test]
    fn vmentry_loads_guest_state_from_vmcs() {
        let mut m = test_machine(&[Insn::VmEntry]);
        let cfg = m.config.clone();
        m.mem
            .poke(cfg.vmcs_field(0, vmcs::GUEST_RIP), 0x10_0008)
            .unwrap();
        m.mem
            .poke(cfg.vmcs_field(0, vmcs::GUEST_RSP), 0x4_0100)
            .unwrap();
        m.mem
            .poke(cfg.vmcs_field(0, vmcs::GUEST_RFLAGS), flags::ZF)
            .unwrap();
        match m.step(0) {
            StepOutcome::Event(Event::VmEntry) => {}
            other => panic!("expected vmentry, got {other:?}"),
        }
        assert_eq!(m.cpu(0).rip, 0x10_0008);
        assert_eq!(m.cpu(0).rsp(), 0x4_0100);
        assert_eq!(m.cpu(0).rflags, flags::ZF);
    }

    #[test]
    fn vmentry_in_guest_mode_is_gp() {
        let mut m = test_machine(&[Insn::Nop]);
        let g = 0x10_0000u64;
        m.mem.load_image(g, &[Insn::VmEntry.encode()]).unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        match m.step(0) {
            StepOutcome::Event(Event::VmExit(ExitReason::Exception(Vector::GeneralProtection))) => {
            }
            other => panic!("expected trapped #GP, got {other:?}"),
        }
    }

    #[test]
    fn assert_fail_surfaces_in_host_mode() {
        let mut m = test_machine(&[Insn::AssertFail { id: 42 }]);
        match m.step(0) {
            StepOutcome::Event(Event::AssertFail { id: 42, .. }) => {}
            other => panic!("expected assert fail, got {other:?}"),
        }
    }

    #[test]
    fn host_cpuid_rdtsc_execute_natively() {
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rax,
                imm: 5,
            },
            Insn::Cpuid,
            Insn::Rdtsc,
        ]);
        run_steps(&mut m, 3);
        let expect = Machine::cpuid_model(5);
        // CPUID overwrote RAX..RDX, then RDTSC overwrote RAX/RDX with time.
        assert_eq!(m.cpu(0).get(Reg::Rbx), expect[1]);
        assert_eq!(m.cpu(0).get(Reg::Rcx), expect[2]);
    }

    #[test]
    fn force_exit_records_resume_point() {
        let mut m = test_machine(&[Insn::Nop]);
        let g = 0x10_0000u64;
        m.mem
            .load_image(g, &[Insn::Nop.encode(), Insn::Nop.encode()])
            .unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 2, vcpu: 1 };
        m.cpu_mut(0).rip = g;
        m.step(0); // retire first nop
        let ev = m.force_exit(0, ExitReason::DeviceInterrupt(3));
        assert_eq!(ev, Event::VmExit(ExitReason::DeviceInterrupt(3)));
        let cfg = m.config.clone();
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RIP)).unwrap(),
            g + 8
        );
    }

    #[test]
    #[should_panic(expected = "force_exit requires guest mode")]
    fn force_exit_in_host_mode_panics() {
        let mut m = test_machine(&[Insn::Nop]);
        m.force_exit(0, ExitReason::DeviceInterrupt(0));
    }

    #[test]
    fn noise_is_deterministic_from_snapshot() {
        let prog = [
            Insn::Noise {
                dst: Reg::Rax,
                bound: 1000,
            },
            Insn::Noise {
                dst: Reg::Rbx,
                bound: 1000,
            },
        ];
        let m0 = test_machine(&prog);
        let mut a = m0.snapshot();
        let mut b = m0.snapshot();
        run_steps(&mut a, 2);
        run_steps(&mut b, 2);
        assert_eq!(a.cpu(0).get(Reg::Rax), b.cpu(0).get(Reg::Rax));
        assert_eq!(a.cpu(0).get(Reg::Rbx), b.cpu(0).get(Reg::Rbx));
    }

    #[test]
    fn out_in_device_model_is_deterministic() {
        let mut m = test_machine(&[
            Insn::MovImm {
                dst: Reg::Rax,
                imm: 0x55,
            },
            Insn::Out {
                port: 0x3f8,
                src: Reg::Rax,
            },
            Insn::In {
                dst: Reg::Rbx,
                port: 0x60,
            },
        ]);
        let mut m2 = m.snapshot();
        run_steps(&mut m, 3);
        run_steps(&mut m2, 3);
        assert_eq!(m.devices.out_count, 1);
        assert_eq!(m.devices.out_hash, m2.devices.out_hash);
        assert_eq!(m.cpu(0).get(Reg::Rbx), m2.cpu(0).get(Reg::Rbx));
    }

    #[test]
    fn pv_guest_hlt_becomes_sched_op_hypercall() {
        let mut m = test_machine(&[Insn::Nop]);
        let g = 0x10_0000u64;
        m.mem.load_image(g, &[Insn::Hlt.encode()]).unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        match m.step(0) {
            StepOutcome::Event(Event::VmExit(ExitReason::Hypercall(29))) => {}
            other => panic!("expected sched_op, got {other:?}"),
        }
    }

    #[test]
    fn guest_state_saved_to_vmcs_on_exit() {
        let mut m = test_machine(&[Insn::Nop]);
        let g = 0x10_0000u64;
        m.mem
            .load_image(g, &[Insn::Hypercall { nr: 0 }.encode()])
            .unwrap();
        m.cpu_mut(0).mode = Mode::Guest { dom: 1, vcpu: 0 };
        m.cpu_mut(0).rip = g;
        m.cpu_mut(0).set(Reg::Rsp, 0x1234_5678);
        m.cpu_mut(0).rflags = flags::CF | flags::SF;
        m.step(0);
        let cfg = m.config.clone();
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RSP)).unwrap(),
            0x1234_5678
        );
        assert_eq!(
            m.mem.peek(cfg.vmcs_field(0, vmcs::GUEST_RFLAGS)).unwrap(),
            flags::CF | flags::SF
        );
        // GPRs are untouched by the hardware exit (software saves them).
        assert_eq!(m.cpu(0).get(Reg::Rsp), m.config.host_stack_top(0));
    }
}
