//! Instruction set: encoding, decoding and disassembly.
//!
//! Every instruction occupies one 64-bit word:
//!
//! ```text
//!   63      56 55   52 51   48 47                                    0
//!  +----------+-------+-------+---------------------------------------+
//!  |  opcode  |  dst  |  src  |              imm48 (sign-ext)         |
//!  +----------+-------+-------+---------------------------------------+
//! ```
//!
//! Word encoding is what makes the fault model faithful: a corrupted `RIP`
//! that lands in a data region fetches arbitrary words, most of which fail to
//! decode (invalid opcode — the paper's canonical fatal corruption), while a
//! few decode into *valid but unintended* instructions — the paper's
//! "incorrect control flow" that only VM-transition detection can catch.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Operation codes. The numeric values are part of the encoding and must not
/// change; gaps are intentionally left undefined so corrupted fetches raise
/// `#UD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    MovImm = 0x01,
    MovReg = 0x02,
    Load = 0x03,
    Store = 0x04,
    Add = 0x05,
    AddImm = 0x06,
    Sub = 0x07,
    SubImm = 0x08,
    Mul = 0x09,
    Div = 0x0A,
    Rem = 0x0B,
    And = 0x0C,
    Or = 0x0D,
    Xor = 0x0E,
    ShlImm = 0x0F,
    ShrImm = 0x10,
    Cmp = 0x11,
    CmpImm = 0x12,
    Test = 0x13,
    Jmp = 0x14,
    Jcc = 0x15,
    Call = 0x16,
    Ret = 0x17,
    Push = 0x18,
    Pop = 0x19,
    JmpReg = 0x1A,
    CallReg = 0x1B,
    Cpuid = 0x20,
    Rdtsc = 0x21,
    Hypercall = 0x22,
    VmEntry = 0x23,
    Hlt = 0x24,
    Nop = 0x25,
    AssertFail = 0x26,
    Out = 0x27,
    In = 0x28,
    Noise = 0x29,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x01 => MovImm,
            0x02 => MovReg,
            0x03 => Load,
            0x04 => Store,
            0x05 => Add,
            0x06 => AddImm,
            0x07 => Sub,
            0x08 => SubImm,
            0x09 => Mul,
            0x0A => Div,
            0x0B => Rem,
            0x0C => And,
            0x0D => Or,
            0x0E => Xor,
            0x0F => ShlImm,
            0x10 => ShrImm,
            0x11 => Cmp,
            0x12 => CmpImm,
            0x13 => Test,
            0x14 => Jmp,
            0x15 => Jcc,
            0x16 => Call,
            0x17 => Ret,
            0x18 => Push,
            0x19 => Pop,
            0x1A => JmpReg,
            0x1B => CallReg,
            0x20 => Cpuid,
            0x21 => Rdtsc,
            0x22 => Hypercall,
            0x23 => VmEntry,
            0x24 => Hlt,
            0x25 => Nop,
            0x26 => AssertFail,
            0x27 => Out,
            0x28 => In,
            0x29 => Noise,
            _ => return None,
        })
    }
}

/// Branch conditions for `Jcc`, encoded in the `dst` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// ZF == 1
    Eq = 0,
    /// ZF == 0
    Ne = 1,
    /// SF != OF (signed less-than)
    Lt = 2,
    /// SF == OF (signed greater-or-equal)
    Ge = 3,
    /// ZF == 0 && SF == OF (signed greater-than)
    Gt = 4,
    /// ZF == 1 || SF != OF (signed less-or-equal)
    Le = 5,
    /// CF == 1 (unsigned below)
    B = 6,
    /// CF == 0 (unsigned above-or-equal)
    Ae = 7,
}

impl Cond {
    /// Decode a condition from the 4-bit `dst` field; values 8..=15 are
    /// invalid encodings (raise `#UD` during decode).
    pub fn from_u8(b: u8) -> Option<Cond> {
        use Cond::*;
        Some(match b {
            0 => Eq,
            1 => Ne,
            2 => Lt,
            3 => Ge,
            4 => Gt,
            5 => Le,
            6 => B,
            7 => Ae,
            _ => return None,
        })
    }

    /// Mnemonic suffix (`je`, `jne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "je",
            Cond::Ne => "jne",
            Cond::Lt => "jl",
            Cond::Ge => "jge",
            Cond::Gt => "jg",
            Cond::Le => "jle",
            Cond::B => "jb",
            Cond::Ae => "jae",
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Insn {
    /// `dst <- imm`
    MovImm {
        dst: Reg,
        imm: i64,
    },
    /// `dst <- src`
    MovReg {
        dst: Reg,
        src: Reg,
    },
    /// `dst <- mem[src + imm]`
    Load {
        dst: Reg,
        base: Reg,
        off: i64,
    },
    /// `mem[dst + imm] <- src`
    Store {
        base: Reg,
        src: Reg,
        off: i64,
    },
    /// `dst <- dst op src` (wrapping)
    Add {
        dst: Reg,
        src: Reg,
    },
    AddImm {
        dst: Reg,
        imm: i64,
    },
    Sub {
        dst: Reg,
        src: Reg,
    },
    SubImm {
        dst: Reg,
        imm: i64,
    },
    Mul {
        dst: Reg,
        src: Reg,
    },
    /// `dst <- dst / src`; `src == 0` raises `#DE`.
    Div {
        dst: Reg,
        src: Reg,
    },
    /// `dst <- dst % src`; `src == 0` raises `#DE`.
    Rem {
        dst: Reg,
        src: Reg,
    },
    And {
        dst: Reg,
        src: Reg,
    },
    Or {
        dst: Reg,
        src: Reg,
    },
    Xor {
        dst: Reg,
        src: Reg,
    },
    ShlImm {
        dst: Reg,
        imm: u8,
    },
    ShrImm {
        dst: Reg,
        imm: u8,
    },
    /// Set flags from `a - b`.
    Cmp {
        a: Reg,
        b: Reg,
    },
    CmpImm {
        a: Reg,
        imm: i64,
    },
    /// Set ZF/SF from `a & b`.
    Test {
        a: Reg,
        b: Reg,
    },
    /// Unconditional jump to absolute address `target`.
    Jmp {
        target: u64,
    },
    /// Conditional jump.
    Jcc {
        cond: Cond,
        target: u64,
    },
    /// Push return address, jump to `target`.
    Call {
        target: u64,
    },
    /// Pop return address into `RIP`.
    Ret,
    Push {
        src: Reg,
    },
    Pop {
        dst: Reg,
    },
    /// Indirect jump through a register (dispatch tables).
    JmpReg {
        target: Reg,
    },
    CallReg {
        target: Reg,
    },
    /// CPUID leaf in RAX; results written to RAX..RDX. Privileged-trapping in
    /// PV guest mode, direct-exiting in HVM guest mode, native in host mode.
    Cpuid,
    /// Cycle counter into RAX (low 32) / RDX (high 32). Trap/exit semantics
    /// mirror `Cpuid`.
    Rdtsc,
    /// Guest-only: request hypervisor service `nr`.
    Hypercall {
        nr: u8,
    },
    /// Host-only: resume the guest. Guest `RIP`/`RFLAGS` are loaded by
    /// "hardware" from the per-CPU VMCS block, mirroring Intel VMX, so the
    /// exit stub must have stored the (possibly updated) values there.
    VmEntry,
    Hlt,
    Nop,
    /// Host-only sink for failed software assertions; `id` names the
    /// assertion site. Never reached in error-free executions.
    AssertFail {
        id: u16,
    },
    /// Port output: port in imm, value in `src`.
    Out {
        port: u16,
        src: Reg,
    },
    /// Port input: port in imm, value to `dst`.
    In {
        dst: Reg,
        port: u16,
    },
    /// `dst <- prng() % max(imm,1)` — deterministic workload variability.
    Noise {
        dst: Reg,
        bound: u64,
    },
}

/// Why a word failed to decode. All decode failures surface as `#UD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Opcode valid but an operand field uses an invalid encoding.
    BadOperand(u8),
}

const IMM_MASK: u64 = (1 << 48) - 1;

fn sext48(v: u64) -> i64 {
    ((v << 16) as i64) >> 16
}

impl Insn {
    /// Encode into a 64-bit word.
    pub fn encode(self) -> u64 {
        fn pack(op: Opcode, dst: u8, src: u8, imm: i64) -> u64 {
            ((op as u64) << 56)
                | (((dst & 0xf) as u64) << 52)
                | (((src & 0xf) as u64) << 48)
                | ((imm as u64) & IMM_MASK)
        }
        use Insn::*;
        match self {
            MovImm { dst, imm } => pack(Opcode::MovImm, dst as u8, 0, imm),
            MovReg { dst, src } => pack(Opcode::MovReg, dst as u8, src as u8, 0),
            Load { dst, base, off } => pack(Opcode::Load, dst as u8, base as u8, off),
            Store { base, src, off } => pack(Opcode::Store, base as u8, src as u8, off),
            Add { dst, src } => pack(Opcode::Add, dst as u8, src as u8, 0),
            AddImm { dst, imm } => pack(Opcode::AddImm, dst as u8, 0, imm),
            Sub { dst, src } => pack(Opcode::Sub, dst as u8, src as u8, 0),
            SubImm { dst, imm } => pack(Opcode::SubImm, dst as u8, 0, imm),
            Mul { dst, src } => pack(Opcode::Mul, dst as u8, src as u8, 0),
            Div { dst, src } => pack(Opcode::Div, dst as u8, src as u8, 0),
            Rem { dst, src } => pack(Opcode::Rem, dst as u8, src as u8, 0),
            And { dst, src } => pack(Opcode::And, dst as u8, src as u8, 0),
            Or { dst, src } => pack(Opcode::Or, dst as u8, src as u8, 0),
            Xor { dst, src } => pack(Opcode::Xor, dst as u8, src as u8, 0),
            ShlImm { dst, imm } => pack(Opcode::ShlImm, dst as u8, 0, imm as i64),
            ShrImm { dst, imm } => pack(Opcode::ShrImm, dst as u8, 0, imm as i64),
            Cmp { a, b } => pack(Opcode::Cmp, a as u8, b as u8, 0),
            CmpImm { a, imm } => pack(Opcode::CmpImm, a as u8, 0, imm),
            Test { a, b } => pack(Opcode::Test, a as u8, b as u8, 0),
            Jmp { target } => pack(Opcode::Jmp, 0, 0, target as i64),
            Jcc { cond, target } => pack(Opcode::Jcc, cond as u8, 0, target as i64),
            Call { target } => pack(Opcode::Call, 0, 0, target as i64),
            Ret => pack(Opcode::Ret, 0, 0, 0),
            Push { src } => pack(Opcode::Push, 0, src as u8, 0),
            Pop { dst } => pack(Opcode::Pop, dst as u8, 0, 0),
            JmpReg { target } => pack(Opcode::JmpReg, 0, target as u8, 0),
            CallReg { target } => pack(Opcode::CallReg, 0, target as u8, 0),
            Cpuid => pack(Opcode::Cpuid, 0, 0, 0),
            Rdtsc => pack(Opcode::Rdtsc, 0, 0, 0),
            Hypercall { nr } => pack(Opcode::Hypercall, 0, 0, nr as i64),
            VmEntry => pack(Opcode::VmEntry, 0, 0, 0),
            Hlt => pack(Opcode::Hlt, 0, 0, 0),
            Nop => pack(Opcode::Nop, 0, 0, 0),
            AssertFail { id } => pack(Opcode::AssertFail, 0, 0, id as i64),
            Out { port, src } => pack(Opcode::Out, 0, src as u8, port as i64),
            In { dst, port } => pack(Opcode::In, dst as u8, 0, port as i64),
            Noise { dst, bound } => pack(Opcode::Noise, dst as u8, 0, bound as i64),
        }
    }

    /// Decode a 64-bit word. Unknown opcodes and invalid operand encodings
    /// yield `Err`, which the CPU turns into `#UD`.
    pub fn decode(word: u64) -> Result<Insn, DecodeError> {
        let opb = (word >> 56) as u8;
        let op = Opcode::from_u8(opb).ok_or(DecodeError::BadOpcode(opb))?;
        let d = ((word >> 52) & 0xf) as u8;
        let s = ((word >> 48) & 0xf) as u8;
        let rd = Reg::from_index(d);
        let rs = Reg::from_index(s);
        let imm = sext48(word & IMM_MASK);
        use Insn::*;
        Ok(match op {
            Opcode::MovImm => MovImm { dst: rd, imm },
            Opcode::MovReg => MovReg { dst: rd, src: rs },
            Opcode::Load => Load {
                dst: rd,
                base: rs,
                off: imm,
            },
            Opcode::Store => Store {
                base: rd,
                src: rs,
                off: imm,
            },
            Opcode::Add => Add { dst: rd, src: rs },
            Opcode::AddImm => AddImm { dst: rd, imm },
            Opcode::Sub => Sub { dst: rd, src: rs },
            Opcode::SubImm => SubImm { dst: rd, imm },
            Opcode::Mul => Mul { dst: rd, src: rs },
            Opcode::Div => Div { dst: rd, src: rs },
            Opcode::Rem => Rem { dst: rd, src: rs },
            Opcode::And => And { dst: rd, src: rs },
            Opcode::Or => Or { dst: rd, src: rs },
            Opcode::Xor => Xor { dst: rd, src: rs },
            Opcode::ShlImm => ShlImm {
                dst: rd,
                imm: (imm as u64 & 0x3f) as u8,
            },
            Opcode::ShrImm => ShrImm {
                dst: rd,
                imm: (imm as u64 & 0x3f) as u8,
            },
            Opcode::Cmp => Cmp { a: rd, b: rs },
            Opcode::CmpImm => CmpImm { a: rd, imm },
            Opcode::Test => Test { a: rd, b: rs },
            Opcode::Jmp => Jmp { target: imm as u64 },
            Opcode::Jcc => Jcc {
                cond: Cond::from_u8(d).ok_or(DecodeError::BadOperand(d))?,
                target: imm as u64,
            },
            Opcode::Call => Call { target: imm as u64 },
            Opcode::Ret => Ret,
            Opcode::Push => Push { src: rs },
            Opcode::Pop => Pop { dst: rd },
            Opcode::JmpReg => JmpReg { target: rs },
            Opcode::CallReg => CallReg { target: rs },
            Opcode::Cpuid => Cpuid,
            Opcode::Rdtsc => Rdtsc,
            Opcode::Hypercall => Hypercall {
                nr: (imm as u64 & 0xff) as u8,
            },
            Opcode::VmEntry => VmEntry,
            Opcode::Hlt => Hlt,
            Opcode::Nop => Nop,
            Opcode::AssertFail => AssertFail {
                id: (imm as u64 & 0xffff) as u16,
            },
            Opcode::Out => Out {
                port: (imm as u64 & 0xffff) as u16,
                src: rs,
            },
            Opcode::In => In {
                dst: rd,
                port: (imm as u64 & 0xffff) as u16,
            },
            Opcode::Noise => Noise {
                dst: rd,
                bound: imm as u64 & IMM_MASK,
            },
        })
    }

    /// True for instructions counted by the `BR_INST_RETIRED` performance
    /// event (all control transfers, taken or not, matching the x86 event
    /// the paper programs).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. }
                | Insn::Jcc { .. }
                | Insn::Call { .. }
                | Insn::Ret
                | Insn::JmpReg { .. }
                | Insn::CallReg { .. }
        )
    }

    /// Memory reads performed (for `MEM_INST_RETIRED.LOADS`).
    pub fn mem_reads(&self) -> u64 {
        match self {
            Insn::Load { .. } | Insn::Pop { .. } | Insn::Ret => 1,
            _ => 0,
        }
    }

    /// Memory writes performed (for `MEM_INST_RETIRED.STORES`).
    pub fn mem_writes(&self) -> u64 {
        match self {
            Insn::Store { .. } | Insn::Push { .. } | Insn::Call { .. } | Insn::CallReg { .. } => 1,
            _ => 0,
        }
    }

    /// Human-readable disassembly.
    pub fn disasm(&self) -> String {
        use Insn::*;
        match self {
            MovImm { dst, imm } => format!("mov {dst}, {imm:#x}"),
            MovReg { dst, src } => format!("mov {dst}, {src}"),
            Load { dst, base, off } => format!("mov {dst}, [{base}{off:+#x}]"),
            Store { base, src, off } => format!("mov [{base}{off:+#x}], {src}"),
            Add { dst, src } => format!("add {dst}, {src}"),
            AddImm { dst, imm } => format!("add {dst}, {imm:#x}"),
            Sub { dst, src } => format!("sub {dst}, {src}"),
            SubImm { dst, imm } => format!("sub {dst}, {imm:#x}"),
            Mul { dst, src } => format!("imul {dst}, {src}"),
            Div { dst, src } => format!("div {dst}, {src}"),
            Rem { dst, src } => format!("rem {dst}, {src}"),
            And { dst, src } => format!("and {dst}, {src}"),
            Or { dst, src } => format!("or {dst}, {src}"),
            Xor { dst, src } => format!("xor {dst}, {src}"),
            ShlImm { dst, imm } => format!("shl {dst}, {imm}"),
            ShrImm { dst, imm } => format!("shr {dst}, {imm}"),
            Cmp { a, b } => format!("cmp {a}, {b}"),
            CmpImm { a, imm } => format!("cmp {a}, {imm:#x}"),
            Test { a, b } => format!("test {a}, {b}"),
            Jmp { target } => format!("jmp {target:#x}"),
            Jcc { cond, target } => format!("{} {target:#x}", cond.mnemonic()),
            Call { target } => format!("call {target:#x}"),
            Ret => "ret".to_string(),
            Push { src } => format!("push {src}"),
            Pop { dst } => format!("pop {dst}"),
            JmpReg { target } => format!("jmp {target}"),
            CallReg { target } => format!("call {target}"),
            Cpuid => "cpuid".to_string(),
            Rdtsc => "rdtsc".to_string(),
            Hypercall { nr } => format!("hypercall {nr}"),
            VmEntry => "vmentry".to_string(),
            Hlt => "hlt".to_string(),
            Nop => "nop".to_string(),
            AssertFail { id } => format!("assert_fail {id}"),
            Out { port, src } => format!("out {port:#x}, {src}"),
            In { dst, port } => format!("in {dst}, {port:#x}"),
            Noise { dst, bound } => format!("noise {dst}, {bound}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insns() -> Vec<Insn> {
        use Insn::*;
        vec![
            MovImm {
                dst: Reg::Rax,
                imm: -5,
            },
            MovImm {
                dst: Reg::R15,
                imm: 0x7fff_ffff_ffff,
            },
            MovReg {
                dst: Reg::Rbx,
                src: Reg::Rcx,
            },
            Load {
                dst: Reg::Rdx,
                base: Reg::Rbp,
                off: -8,
            },
            Store {
                base: Reg::Rsp,
                src: Reg::Rdi,
                off: 16,
            },
            Add {
                dst: Reg::Rax,
                src: Reg::Rbx,
            },
            AddImm {
                dst: Reg::R9,
                imm: 1024,
            },
            Sub {
                dst: Reg::Rsi,
                src: Reg::R8,
            },
            SubImm {
                dst: Reg::R10,
                imm: -3,
            },
            Mul {
                dst: Reg::Rax,
                src: Reg::Rcx,
            },
            Div {
                dst: Reg::Rax,
                src: Reg::Rcx,
            },
            Rem {
                dst: Reg::Rdx,
                src: Reg::Rbx,
            },
            And {
                dst: Reg::Rax,
                src: Reg::R11,
            },
            Or {
                dst: Reg::Rax,
                src: Reg::R12,
            },
            Xor {
                dst: Reg::Rax,
                src: Reg::Rax,
            },
            ShlImm {
                dst: Reg::Rcx,
                imm: 3,
            },
            ShrImm {
                dst: Reg::Rcx,
                imm: 63,
            },
            Cmp {
                a: Reg::Rax,
                b: Reg::Rbx,
            },
            CmpImm {
                a: Reg::Rax,
                imm: 100,
            },
            Test {
                a: Reg::Rax,
                b: Reg::Rax,
            },
            Jmp { target: 0x10_0000 },
            Jcc {
                cond: Cond::Ne,
                target: 0x10_0008,
            },
            Call { target: 0x20_0000 },
            Ret,
            Push { src: Reg::Rbp },
            Pop { dst: Reg::Rbp },
            JmpReg { target: Reg::Rax },
            CallReg { target: Reg::R13 },
            Cpuid,
            Rdtsc,
            Hypercall { nr: 29 },
            VmEntry,
            Hlt,
            Nop,
            AssertFail { id: 7 },
            Out {
                port: 0x3f8,
                src: Reg::Rax,
            },
            In {
                dst: Reg::Rax,
                port: 0x60,
            },
            Noise {
                dst: Reg::Rcx,
                bound: 17,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for insn in all_sample_insns() {
            let word = insn.encode();
            let back = Insn::decode(word).unwrap_or_else(|e| panic!("{insn:?}: {e:?}"));
            assert_eq!(back, insn, "round trip failed for {}", insn.disasm());
        }
    }

    #[test]
    fn zero_word_is_invalid_opcode() {
        assert_eq!(Insn::decode(0), Err(DecodeError::BadOpcode(0)));
    }

    #[test]
    fn small_data_values_fail_to_decode() {
        // Typical small integers stored in data regions must not decode:
        // they have opcode byte zero.
        for v in [1u64, 2, 100, 0xffff, 0xdead_beef] {
            assert!(Insn::decode(v).is_err(), "{v:#x} should not decode");
        }
    }

    #[test]
    fn invalid_jcc_condition_is_bad_operand() {
        // Build a Jcc word with condition field 12 (invalid).
        let word = ((Opcode::Jcc as u64) << 56) | (12u64 << 52) | 0x40;
        assert_eq!(Insn::decode(word), Err(DecodeError::BadOperand(12)));
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let i = Insn::Load {
            dst: Reg::Rax,
            base: Reg::Rbp,
            off: -64,
        };
        match Insn::decode(i.encode()).unwrap() {
            Insn::Load { off, .. } => assert_eq!(off, -64),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn branch_classification_matches_x86_event() {
        assert!(Insn::Jmp { target: 0 }.is_branch());
        assert!(Insn::Jcc {
            cond: Cond::Eq,
            target: 0
        }
        .is_branch());
        assert!(Insn::Ret.is_branch());
        assert!(Insn::CallReg { target: Reg::Rax }.is_branch());
        assert!(!Insn::Add {
            dst: Reg::Rax,
            src: Reg::Rbx
        }
        .is_branch());
        assert!(!Insn::Load {
            dst: Reg::Rax,
            base: Reg::Rbx,
            off: 0
        }
        .is_branch());
    }

    #[test]
    fn memory_event_counts() {
        assert_eq!(
            Insn::Load {
                dst: Reg::Rax,
                base: Reg::Rbx,
                off: 0
            }
            .mem_reads(),
            1
        );
        assert_eq!(Insn::Pop { dst: Reg::Rax }.mem_reads(), 1);
        assert_eq!(Insn::Ret.mem_reads(), 1);
        assert_eq!(
            Insn::Store {
                base: Reg::Rax,
                src: Reg::Rbx,
                off: 0
            }
            .mem_writes(),
            1
        );
        assert_eq!(Insn::Push { src: Reg::Rax }.mem_writes(), 1);
        assert_eq!(Insn::Call { target: 0 }.mem_writes(), 1);
        assert_eq!(Insn::Nop.mem_reads() + Insn::Nop.mem_writes(), 0);
    }

    #[test]
    fn disasm_is_nonempty_for_all() {
        for insn in all_sample_insns() {
            assert!(!insn.disasm().is_empty());
        }
    }
}
