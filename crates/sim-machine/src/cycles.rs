//! Cycle cost model.
//!
//! Fig. 7 and Fig. 11 of the paper report *relative* performance overheads —
//! added cycles divided by baseline cycles. We therefore need a consistent
//! cycle accounting, not silicon-accurate timing. The model assigns a base
//! cost per retired instruction, an extra cost to memory operations, and a
//! world-switch cost to VM exits/entries (hardware-assisted transitions cost
//! on the order of hundreds of cycles on the Nehalem-era Xeon E5506 the
//! paper measures on).

use serde::{Deserialize, Serialize};

/// Tunable cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleModel {
    /// Cost of any retired instruction.
    pub base: u64,
    /// Additional cost per memory word accessed.
    pub mem: u64,
    /// Additional cost of a taken control transfer.
    pub branch_taken: u64,
    /// Hardware cost of a VM exit (guest → host world switch).
    pub vm_exit: u64,
    /// Hardware cost of a VM entry (host → guest world switch).
    pub vm_entry: u64,
    /// Clock frequency in Hz for converting cycles to seconds; defaults to
    /// the paper's Xeon E5506 at 2.13 GHz.
    pub hz: u64,
}

impl Default for CycleModel {
    fn default() -> CycleModel {
        CycleModel {
            base: 1,
            mem: 2,
            branch_taken: 1,
            vm_exit: 400,
            vm_entry: 400,
            hz: 2_130_000_000,
        }
    }
}

impl CycleModel {
    /// Cycles for one retired instruction with the given properties.
    #[inline]
    pub fn insn_cost(&self, mem_ops: u64, taken_branch: bool) -> u64 {
        self.base + self.mem * mem_ops + if taken_branch { self.branch_taken } else { 0 }
    }

    /// Convert a cycle count to seconds under the modeled clock.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz as f64
    }

    /// Convert nanoseconds to cycles (used for the paper's measured 1,900 ns
    /// critical-state copy cost).
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as u128 * self.hz as u128 / 1_000_000_000u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_clock() {
        let m = CycleModel::default();
        assert_eq!(m.hz, 2_130_000_000);
    }

    #[test]
    fn insn_cost_components() {
        let m = CycleModel::default();
        assert_eq!(m.insn_cost(0, false), 1);
        assert_eq!(m.insn_cost(1, false), 3);
        assert_eq!(m.insn_cost(0, true), 2);
        assert_eq!(m.insn_cost(2, true), 6);
    }

    #[test]
    fn ns_conversion_matches_paper_copy_cost() {
        let m = CycleModel::default();
        // 1,900 ns at 2.13 GHz ≈ 4,047 cycles.
        let c = m.ns_to_cycles(1_900);
        assert!((4_000..4_100).contains(&c), "got {c}");
    }

    #[test]
    fn cycles_to_secs_round_trip() {
        let m = CycleModel::default();
        let s = m.cycles_to_secs(m.hz);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
