//! VM exit reasons.
//!
//! Section IV of the paper partitions all hypervisor activations into five
//! categories: common device interrupts (`do_irq`), ten APIC-sourced
//! interrupts, software interrupts/tasklets (`do_softirq`, `do_tasklet`),
//! nineteen exceptions, and thirty-eight hypercalls. The exit reason is the
//! first — and per the paper the most relevant — feature of the VM-transition
//! detector (synonym `VMER` in Table I).

use crate::exception::Vector;
use serde::{Deserialize, Serialize};

/// Number of hypercalls in Xen 4.1.2, which the paper reports as 38.
pub const NR_HYPERCALLS: u8 = 38;
/// Number of APIC interrupt handlers the paper reports ("ten interrupt
/// handlers in this category").
pub const NR_APIC_VECTORS: u8 = 10;
/// Number of hardware device IRQ lines the simulated platform exposes.
pub const NR_DEVICE_IRQS: u8 = 16;

/// Why control transferred from guest mode to host mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitReason {
    /// Guest invoked hypercall `nr` (0..38). Para-virtualized interface.
    Hypercall(u8),
    /// Guest raised exception `vector`, trapped by the hypervisor
    /// (e.g. #GP from a privileged instruction that must be emulated).
    Exception(Vector),
    /// A hardware device interrupt arrived on IRQ line `irq` (handled by
    /// `do_irq`).
    DeviceInterrupt(u8),
    /// An APIC-local interrupt (timer tick, IPI, performance-counter
    /// interrupt, ...) with local vector index 0..10.
    ApicInterrupt(u8),
    /// Pending soft-interrupt work (`do_softirq`).
    Softirq,
    /// Pending tasklet work (`do_tasklet`).
    Tasklet,
    /// Guest executed a port I/O instruction (hardware-assisted mode).
    IoInstruction { port: u16, write: bool },
    /// Guest executed CPUID (hardware-assisted mode exits directly; the
    /// para-virtual path arrives as `Exception(#GP)` instead).
    CpuidExit,
    /// Guest executed RDTSC (hardware-assisted mode).
    RdtscExit,
    /// Guest executed HLT.
    HltExit,
}

impl ExitReason {
    /// Dense "VM exit reason" code used both as the ML feature (`VMER`) and
    /// as the index into the hypervisor's dispatch table.
    ///
    /// Layout:
    /// * `0..38`  — hypercalls
    /// * `38..58` — exception vectors 0..=19
    /// * `58..74` — device IRQs 0..16
    /// * `74..84` — APIC vectors 0..10
    /// * `84`     — softirq, `85` — tasklet
    /// * `86`     — I/O read, `87` — I/O write
    /// * `88`     — cpuid, `89` — rdtsc, `90` — hlt
    pub fn vmer(self) -> u16 {
        match self {
            ExitReason::Hypercall(n) => (n % NR_HYPERCALLS) as u16,
            ExitReason::Exception(v) => 38 + v.number() as u16,
            ExitReason::DeviceInterrupt(irq) => 58 + (irq % NR_DEVICE_IRQS) as u16,
            ExitReason::ApicInterrupt(v) => 74 + (v % NR_APIC_VECTORS) as u16,
            ExitReason::Softirq => 84,
            ExitReason::Tasklet => 85,
            ExitReason::IoInstruction { write, .. } => {
                if write {
                    87
                } else {
                    86
                }
            }
            ExitReason::CpuidExit => 88,
            ExitReason::RdtscExit => 89,
            ExitReason::HltExit => 90,
        }
    }

    /// Total number of distinct VMER codes.
    pub const VMER_COUNT: u16 = 91;

    /// Reconstruct an exit reason from a dense code. Port numbers for I/O
    /// exits are not recoverable and default to zero. Returns `None` for
    /// codes outside the dense range.
    pub fn from_vmer(code: u16) -> Option<ExitReason> {
        Some(match code {
            0..=37 => ExitReason::Hypercall(code as u8),
            38..=57 => ExitReason::Exception(Vector::from_u8((code - 38) as u8)),
            58..=73 => ExitReason::DeviceInterrupt((code - 58) as u8),
            74..=83 => ExitReason::ApicInterrupt((code - 74) as u8),
            84 => ExitReason::Softirq,
            85 => ExitReason::Tasklet,
            86 => ExitReason::IoInstruction {
                port: 0,
                write: false,
            },
            87 => ExitReason::IoInstruction {
                port: 0,
                write: true,
            },
            88 => ExitReason::CpuidExit,
            89 => ExitReason::RdtscExit,
            90 => ExitReason::HltExit,
            _ => return None,
        })
    }

    /// The five coarse categories of Section IV ("VM exit reasons fall into
    /// five categories"), used when reporting activation-frequency mixes.
    pub fn category(self) -> ExitCategory {
        match self {
            ExitReason::Hypercall(_) => ExitCategory::Hypercall,
            ExitReason::Exception(_) => ExitCategory::Exception,
            ExitReason::DeviceInterrupt(_) => ExitCategory::DeviceInterrupt,
            ExitReason::ApicInterrupt(_) => ExitCategory::ApicInterrupt,
            ExitReason::Softirq | ExitReason::Tasklet => ExitCategory::SoftirqTasklet,
            ExitReason::IoInstruction { .. }
            | ExitReason::CpuidExit
            | ExitReason::RdtscExit
            | ExitReason::HltExit => ExitCategory::HardwareAssist,
        }
    }
}

/// Coarse activation categories (paper §IV plus a sixth bucket for the
/// hardware-assisted direct exits that bypass the PV trap paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitCategory {
    Hypercall,
    Exception,
    DeviceInterrupt,
    ApicInterrupt,
    SoftirqTasklet,
    HardwareAssist,
}

impl std::fmt::Display for ExitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExitReason::Hypercall(n) => write!(f, "hypercall({n})"),
            ExitReason::Exception(v) => write!(f, "exception({})", v.mnemonic()),
            ExitReason::DeviceInterrupt(i) => write!(f, "irq({i})"),
            ExitReason::ApicInterrupt(v) => write!(f, "apic({v})"),
            ExitReason::Softirq => write!(f, "softirq"),
            ExitReason::Tasklet => write!(f, "tasklet"),
            ExitReason::IoInstruction { port, write } => {
                write!(f, "io({port}, {})", if *write { "out" } else { "in" })
            }
            ExitReason::CpuidExit => write!(f, "cpuid-exit"),
            ExitReason::RdtscExit => write!(f, "rdtsc-exit"),
            ExitReason::HltExit => write!(f, "hlt-exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmer_codes_are_dense_and_unique() {
        let mut seen = vec![false; ExitReason::VMER_COUNT as usize];
        for n in 0..NR_HYPERCALLS {
            mark(&mut seen, ExitReason::Hypercall(n));
        }
        for v in Vector::ALL {
            mark(&mut seen, ExitReason::Exception(v));
        }
        for i in 0..NR_DEVICE_IRQS {
            mark(&mut seen, ExitReason::DeviceInterrupt(i));
        }
        for v in 0..NR_APIC_VECTORS {
            mark(&mut seen, ExitReason::ApicInterrupt(v));
        }
        mark(&mut seen, ExitReason::Softirq);
        mark(&mut seen, ExitReason::Tasklet);
        mark(
            &mut seen,
            ExitReason::IoInstruction {
                port: 0x3f8,
                write: false,
            },
        );
        mark(
            &mut seen,
            ExitReason::IoInstruction {
                port: 0x3f8,
                write: true,
            },
        );
        mark(&mut seen, ExitReason::CpuidExit);
        mark(&mut seen, ExitReason::RdtscExit);
        mark(&mut seen, ExitReason::HltExit);
        assert!(
            seen.iter().all(|&s| s),
            "every VMER code covered exactly once"
        );
    }

    fn mark(seen: &mut [bool], r: ExitReason) {
        let c = r.vmer() as usize;
        assert!(!seen[c], "duplicate vmer {c} for {r}");
        seen[c] = true;
    }

    #[test]
    fn from_vmer_round_trips() {
        for code in 0..ExitReason::VMER_COUNT {
            let r = ExitReason::from_vmer(code).expect("dense code decodes");
            assert_eq!(r.vmer(), code);
        }
        assert_eq!(ExitReason::from_vmer(ExitReason::VMER_COUNT), None);
    }

    #[test]
    fn hypercall_count_matches_xen_4_1_2() {
        assert_eq!(NR_HYPERCALLS, 38);
        assert_eq!(NR_APIC_VECTORS, 10);
    }

    #[test]
    fn categories_partition_reasons() {
        assert_eq!(ExitReason::Hypercall(3).category(), ExitCategory::Hypercall);
        assert_eq!(
            ExitReason::Exception(Vector::GeneralProtection).category(),
            ExitCategory::Exception
        );
        assert_eq!(ExitReason::Softirq.category(), ExitCategory::SoftirqTasklet);
        assert_eq!(ExitReason::Tasklet.category(), ExitCategory::SoftirqTasklet);
        assert_eq!(
            ExitReason::CpuidExit.category(),
            ExitCategory::HardwareAssist
        );
    }
}
