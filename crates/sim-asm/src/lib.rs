//! # sim-asm — assembler DSL for the simulated machine
//!
//! The Xen-like hypervisor of this reproduction is written *in simulated
//! code*, so that injected register faults propagate through genuine control
//! flow, memory traffic and performance-counter footprints. This crate is
//! the assembler those handlers are written in: a builder that emits
//! [`sim_machine::Insn`] words, resolves labels to absolute addresses, and
//! produces a loadable image plus a symbol table.
//!
//! ```
//! use sim_asm::Asm;
//! use sim_machine::Reg;
//!
//! let mut a = Asm::new(0x1_0000);
//! a.global("memset_loop");
//! a.movi(Reg::Rcx, 4);            // counter
//! a.label("loop");
//! a.store(Reg::Rdi, 0, Reg::Rax); // *rdi = rax
//! a.addi(Reg::Rdi, 8);
//! a.subi(Reg::Rcx, 1);
//! a.cmpi(Reg::Rcx, 0);
//! a.jne("loop");
//! a.ret();
//! let img = a.assemble().unwrap();
//! assert_eq!(img.symbol("memset_loop"), Some(0x1_0000));
//! ```

use sim_machine::{Cond, Insn, Reg};
use std::collections::HashMap;

/// A branch target: either an absolute address or a label resolved at
/// assembly time.
#[derive(Debug, Clone)]
pub enum Target {
    Abs(u64),
    Label(String),
}

impl From<u64> for Target {
    fn from(a: u64) -> Target {
        Target::Abs(a)
    }
}

impl From<&str> for Target {
    fn from(l: &str) -> Target {
        Target::Label(l.to_string())
    }
}

impl From<String> for Target {
    fn from(l: String) -> Target {
        Target::Label(l)
    }
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label: {l}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An instruction slot, possibly with an unresolved target.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Insn),
    Jmp(Target),
    Jcc(Cond, Target),
    Call(Target),
    /// `movi reg, <label address>` — for loading handler addresses into
    /// dispatch tables.
    MovLabel(Reg, Target),
}

/// An assembled image: contiguous instruction words at `base`, plus the
/// symbol table (label → absolute byte address).
#[derive(Debug, Clone)]
pub struct Image {
    pub base: u64,
    pub words: Vec<u64>,
    pub symbols: HashMap<String, u64>,
}

impl Image {
    /// Address of a label, if defined.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Address of a label; panics with the label name if missing (loader
    /// convenience).
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol: {name}"))
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// The assembler builder.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    slots: Vec<Slot>,
    labels: HashMap<String, u64>,
    unique: u64,
}

impl Asm {
    /// Start assembling at byte address `base` (must be 8-aligned).
    pub fn new(base: u64) -> Asm {
        assert_eq!(base % 8, 0, "code base must be word aligned");
        Asm {
            base,
            slots: Vec::new(),
            labels: HashMap::new(),
            unique: 0,
        }
    }

    /// Current emission address.
    pub fn here(&self) -> u64 {
        self.base + (self.slots.len() as u64) * 8
    }

    /// Define a label at the current address.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let addr = self.here();
        if self.labels.insert(name.clone(), addr).is_some() {
            panic!("duplicate label: {name}");
        }
    }

    /// Alias of [`Asm::label`] that reads better at procedure heads.
    pub fn global(&mut self, name: impl Into<String>) {
        self.label(name);
    }

    /// Generate a fresh label name with the given prefix (for loop bodies in
    /// helper-generated code).
    pub fn fresh(&mut self, prefix: &str) -> String {
        self.unique += 1;
        format!("{prefix}${}", self.unique)
    }

    fn emit(&mut self, i: Insn) {
        self.slots.push(Slot::Ready(i));
    }

    // ---- data movement ----
    pub fn movi(&mut self, dst: Reg, imm: i64) {
        self.emit(Insn::MovImm { dst, imm });
    }
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::MovReg { dst, src });
    }
    /// `dst <- address of label` (resolved at assembly).
    pub fn lea(&mut self, dst: Reg, target: impl Into<Target>) {
        self.slots.push(Slot::MovLabel(dst, target.into()));
    }
    pub fn load(&mut self, dst: Reg, base: Reg, off: i64) {
        self.emit(Insn::Load { dst, base, off });
    }
    pub fn store(&mut self, base: Reg, off: i64, src: Reg) {
        self.emit(Insn::Store { base, src, off });
    }

    // ---- arithmetic / logic ----
    pub fn add(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Add { dst, src });
    }
    pub fn addi(&mut self, dst: Reg, imm: i64) {
        self.emit(Insn::AddImm { dst, imm });
    }
    pub fn sub(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Sub { dst, src });
    }
    pub fn subi(&mut self, dst: Reg, imm: i64) {
        self.emit(Insn::SubImm { dst, imm });
    }
    pub fn mul(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Mul { dst, src });
    }
    pub fn div(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Div { dst, src });
    }
    pub fn rem(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Rem { dst, src });
    }
    pub fn and(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::And { dst, src });
    }
    pub fn or(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Or { dst, src });
    }
    pub fn xor(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Xor { dst, src });
    }
    pub fn shl(&mut self, dst: Reg, imm: u8) {
        self.emit(Insn::ShlImm { dst, imm });
    }
    pub fn shr(&mut self, dst: Reg, imm: u8) {
        self.emit(Insn::ShrImm { dst, imm });
    }

    // ---- compare / branch ----
    pub fn cmp(&mut self, a: Reg, b: Reg) {
        self.emit(Insn::Cmp { a, b });
    }
    pub fn cmpi(&mut self, a: Reg, imm: i64) {
        self.emit(Insn::CmpImm { a, imm });
    }
    pub fn test(&mut self, a: Reg, b: Reg) {
        self.emit(Insn::Test { a, b });
    }
    pub fn jmp(&mut self, t: impl Into<Target>) {
        self.slots.push(Slot::Jmp(t.into()));
    }
    pub fn jcc(&mut self, cond: Cond, t: impl Into<Target>) {
        self.slots.push(Slot::Jcc(cond, t.into()));
    }
    pub fn je(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Eq, t);
    }
    pub fn jne(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Ne, t);
    }
    pub fn jl(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Lt, t);
    }
    pub fn jge(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Ge, t);
    }
    pub fn jg(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Gt, t);
    }
    pub fn jle(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Le, t);
    }
    pub fn jb(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::B, t);
    }
    pub fn jae(&mut self, t: impl Into<Target>) {
        self.jcc(Cond::Ae, t);
    }
    pub fn call(&mut self, t: impl Into<Target>) {
        self.slots.push(Slot::Call(t.into()));
    }
    pub fn callr(&mut self, r: Reg) {
        self.emit(Insn::CallReg { target: r });
    }
    pub fn jmpr(&mut self, r: Reg) {
        self.emit(Insn::JmpReg { target: r });
    }
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }
    pub fn push(&mut self, r: Reg) {
        self.emit(Insn::Push { src: r });
    }
    pub fn pop(&mut self, r: Reg) {
        self.emit(Insn::Pop { dst: r });
    }

    // ---- system ----
    pub fn cpuid(&mut self) {
        self.emit(Insn::Cpuid);
    }
    pub fn rdtsc(&mut self) {
        self.emit(Insn::Rdtsc);
    }
    pub fn hypercall(&mut self, nr: u8) {
        self.emit(Insn::Hypercall { nr });
    }
    pub fn vmentry(&mut self) {
        self.emit(Insn::VmEntry);
    }
    pub fn hlt(&mut self) {
        self.emit(Insn::Hlt);
    }
    pub fn nop(&mut self) {
        self.emit(Insn::Nop);
    }
    pub fn assert_fail(&mut self, id: u16) {
        self.emit(Insn::AssertFail { id });
    }
    pub fn out(&mut self, port: u16, src: Reg) {
        self.emit(Insn::Out { port, src });
    }
    pub fn inp(&mut self, dst: Reg, port: u16) {
        self.emit(Insn::In { dst, port });
    }
    pub fn noise(&mut self, dst: Reg, bound: u64) {
        self.emit(Insn::Noise { dst, bound });
    }

    // ---- software assertions (paper §III-A) ----

    /// Boundary assertion (paper Listing 1): fall through if
    /// `reg <= bound`, else hit `ASSERT_FAIL id`.
    pub fn assert_le(&mut self, reg: Reg, bound: i64, id: u16) {
        let ok = self.fresh("assert_ok");
        self.cmpi(reg, bound);
        self.jle(ok.clone());
        self.assert_fail(id);
        self.label(ok);
    }

    /// Range assertion: `lo <= reg <= hi`.
    pub fn assert_in_range(&mut self, reg: Reg, lo: i64, hi: i64, id: u16) {
        let ok = self.fresh("assert_ok");
        let fail = self.fresh("assert_fail");
        self.cmpi(reg, lo);
        self.jl(fail.clone());
        self.cmpi(reg, hi);
        self.jle(ok.clone());
        self.label(fail);
        self.assert_fail(id);
        self.label(ok);
    }

    /// Condition assertion (paper Listing 2 style): caller set flags; fall
    /// through if `cond` holds, else `ASSERT_FAIL id`.
    pub fn assert_cond(&mut self, cond: Cond, id: u16) {
        let ok = self.fresh("assert_ok");
        self.jcc(cond, ok.clone());
        self.assert_fail(id);
        self.label(ok);
    }

    /// Equality-with-immediate assertion.
    pub fn assert_eq_imm(&mut self, reg: Reg, expect: i64, id: u16) {
        self.cmpi(reg, expect);
        self.assert_cond(Cond::Eq, id);
    }

    /// Non-zero assertion.
    pub fn assert_nonzero(&mut self, reg: Reg, id: u16) {
        self.cmpi(reg, 0);
        self.assert_cond(Cond::Ne, id);
    }

    /// Resolve all labels and produce the image.
    pub fn assemble(self) -> Result<Image, AsmError> {
        let resolve = |t: &Target| -> Result<u64, AsmError> {
            match t {
                Target::Abs(a) => Ok(*a),
                Target::Label(l) => self
                    .labels
                    .get(l)
                    .copied()
                    .ok_or_else(|| AsmError::UndefinedLabel(l.clone())),
            }
        };
        let mut words = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let insn = match slot {
                Slot::Ready(i) => *i,
                Slot::Jmp(t) => Insn::Jmp {
                    target: resolve(t)?,
                },
                Slot::Jcc(c, t) => Insn::Jcc {
                    cond: *c,
                    target: resolve(t)?,
                },
                Slot::Call(t) => Insn::Call {
                    target: resolve(t)?,
                },
                Slot::MovLabel(r, t) => Insn::MovImm {
                    dst: *r,
                    imm: resolve(t)? as i64,
                },
            };
            words.push(insn.encode());
        }
        Ok(Image {
            base: self.base,
            words,
            symbols: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_machine::{
        CycleModel, Event, Machine, MachineConfig, Memory, Perms, StepOutcome, VirtMode,
    };

    fn machine_with(img: &Image) -> Machine {
        let cfg = MachineConfig {
            nr_cpus: 1,
            host_entry: img.base,
            host_entry_stride: 0,
            host_stack_base: 0x2_0000,
            host_stack_size: 0x1000,
            vmcs_base: 0x3_0000,
            virt_mode: VirtMode::Para,
            cycle_model: CycleModel::default(),
        };
        let mut mem = Memory::new();
        mem.map("text", img.base, img.words.len().max(1), Perms::RX);
        mem.map("stack", 0x2_0000, 512, Perms::RW);
        mem.map("vmcs", 0x3_0000, 16, Perms::RW);
        mem.map("data", 0x4_0000, 256, Perms::RW);
        mem.load_image(img.base, &img.words).unwrap();
        Machine::new(cfg, mem, 1)
    }

    fn run(m: &mut Machine, max: usize) -> Option<Event> {
        for _ in 0..max {
            match m.step(0) {
                StepOutcome::Retired => {}
                StepOutcome::Event(e) => return Some(e),
            }
        }
        None
    }

    #[test]
    fn label_resolution_forward_and_backward() {
        let mut a = Asm::new(0x1_0000);
        a.jmp("fwd"); // forward reference
        a.label("back");
        a.movi(Reg::Rax, 1);
        a.hlt();
        a.label("fwd");
        a.jmp("back"); // backward reference
        let img = a.assemble().unwrap();
        let mut m = machine_with(&img);
        let ev = run(&mut m, 10);
        assert_eq!(ev, Some(Event::Halt));
        assert_eq!(m.cpu(0).get(Reg::Rax), 1);
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Asm::new(0x1_0000);
        a.jmp("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new(0x1_0000);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rcx, 5);
        a.movi(Reg::Rax, 0);
        a.label("loop");
        a.addi(Reg::Rax, 3);
        a.subi(Reg::Rcx, 1);
        a.cmpi(Reg::Rcx, 0);
        a.jne("loop");
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_with(&img);
        assert_eq!(run(&mut m, 100), Some(Event::Halt));
        assert_eq!(m.cpu(0).get(Reg::Rax), 15);
    }

    #[test]
    fn lea_loads_label_address() {
        let mut a = Asm::new(0x1_0000);
        a.lea(Reg::Rax, "func");
        a.callr(Reg::Rax);
        a.hlt();
        a.label("func");
        a.movi(Reg::Rbx, 9);
        a.ret();
        let img = a.assemble().unwrap();
        assert_eq!(img.sym("func"), 0x1_0000 + 3 * 8);
        let mut m = machine_with(&img);
        assert_eq!(run(&mut m, 10), Some(Event::Halt));
        assert_eq!(m.cpu(0).get(Reg::Rbx), 9);
    }

    #[test]
    fn assert_le_passes_in_bounds() {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rax, 19);
        a.assert_le(Reg::Rax, 19, 1);
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_with(&img);
        assert_eq!(run(&mut m, 10), Some(Event::Halt));
    }

    #[test]
    fn assert_le_fires_out_of_bounds() {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rax, 20);
        a.assert_le(Reg::Rax, 19, 7);
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_with(&img);
        match run(&mut m, 10) {
            Some(Event::AssertFail { id: 7, .. }) => {}
            other => panic!("expected assert 7, got {other:?}"),
        }
    }

    #[test]
    fn assert_in_range_boundaries() {
        for (val, fires) in [(4i64, true), (5, false), (9, false), (10, true)] {
            let mut a = Asm::new(0x1_0000);
            a.movi(Reg::Rax, val);
            a.assert_in_range(Reg::Rax, 5, 9, 3);
            a.hlt();
            let img = a.assemble().unwrap();
            let mut m = machine_with(&img);
            let ev = run(&mut m, 12);
            if fires {
                assert!(
                    matches!(ev, Some(Event::AssertFail { id: 3, .. })),
                    "val={val}: expected assertion, got {ev:?}"
                );
            } else {
                assert_eq!(ev, Some(Event::Halt), "val={val}");
            }
        }
    }

    #[test]
    fn assert_nonzero_behaviour() {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rbx, 0);
        a.assert_nonzero(Reg::Rbx, 11);
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_with(&img);
        assert!(matches!(
            run(&mut m, 10),
            Some(Event::AssertFail { id: 11, .. })
        ));
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut a = Asm::new(0x1_0000);
        let l1 = a.fresh("x");
        let l2 = a.fresh("x");
        assert_ne!(l1, l2);
    }

    #[test]
    fn here_tracks_emission() {
        let mut a = Asm::new(0x1_0000);
        assert_eq!(a.here(), 0x1_0000);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 0x1_0010);
    }

    #[test]
    fn image_symbol_lookup() {
        let mut a = Asm::new(0x8000);
        a.nop();
        a.label("mid");
        a.nop();
        let img = a.assemble().unwrap();
        assert_eq!(img.symbol("mid"), Some(0x8008));
        assert_eq!(img.symbol("missing"), None);
        assert_eq!(img.len(), 2);
    }
}
