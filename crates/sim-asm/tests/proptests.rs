//! Property tests for the assembler: label resolution, image layout and
//! executable correctness of generated programs.

use proptest::prelude::*;
use sim_asm::Asm;
use sim_machine::{
    CycleModel, Event, Insn, Machine, MachineConfig, Memory, Perms, Reg, StepOutcome, VirtMode,
};

fn machine_for(img: &sim_asm::Image) -> Machine {
    let cfg = MachineConfig {
        nr_cpus: 1,
        host_entry: img.base,
        host_entry_stride: 0,
        host_stack_base: 0x2_0000,
        host_stack_size: 0x1000,
        vmcs_base: 0x3_0000,
        virt_mode: VirtMode::Para,
        cycle_model: CycleModel::default(),
    };
    let mut mem = Memory::new();
    mem.map("text", img.base, img.words.len().max(1), Perms::RX);
    mem.map("stack", 0x2_0000, 512, Perms::RW);
    mem.map("vmcs", 0x3_0000, 16, Perms::RW);
    mem.load_image(img.base, &img.words).unwrap();
    Machine::new(cfg, mem, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A chain of `movi` + `addi` computes the same sum the host computes.
    #[test]
    fn straightline_arithmetic_matches_host(values in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rax, 0);
        for &v in &values {
            a.addi(Reg::Rax, v);
        }
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_for(&img);
        for _ in 0..values.len() + 3 {
            if let StepOutcome::Event(Event::Halt) = m.step(0) {
                break;
            }
        }
        let expect = values.iter().sum::<i64>() as u64;
        prop_assert_eq!(m.cpu(0).get(Reg::Rax), expect);
    }

    /// Counted loops execute exactly the requested number of iterations.
    #[test]
    fn counted_loop_iterates_exactly(n in 1i64..200) {
        let mut a = Asm::new(0x1_0000);
        a.movi(Reg::Rcx, n);
        a.movi(Reg::Rax, 0);
        a.label("l");
        a.addi(Reg::Rax, 1);
        a.subi(Reg::Rcx, 1);
        a.cmpi(Reg::Rcx, 0);
        a.jne("l");
        a.hlt();
        let img = a.assemble().unwrap();
        let mut m = machine_for(&img);
        for _ in 0..(n as usize * 5 + 10) {
            if let StepOutcome::Event(Event::Halt) = m.step(0) {
                break;
            }
        }
        prop_assert_eq!(m.cpu(0).get(Reg::Rax) as i64, n);
    }

    /// Every emitted instruction decodes back from the image.
    #[test]
    fn image_words_decode(k in 1usize..60) {
        let mut a = Asm::new(0x8000);
        for i in 0..k {
            match i % 5 {
                0 => a.movi(Reg::Rax, i as i64),
                1 => a.addi(Reg::Rbx, 2),
                2 => a.push(Reg::Rcx),
                3 => a.pop(Reg::Rcx),
                _ => a.nop(),
            }
        }
        a.ret();
        let img = a.assemble().unwrap();
        prop_assert_eq!(img.len(), k + 1);
        for w in &img.words {
            prop_assert!(Insn::decode(*w).is_ok());
        }
    }

    /// Nested calls return correctly for any depth the stack can hold.
    #[test]
    fn nested_calls_balance(depth in 1usize..60) {
        let mut a = Asm::new(0x1_0000);
        a.call("f0");
        a.hlt();
        for d in 0..depth {
            a.label(format!("f{d}"));
            a.addi(Reg::Rax, 1);
            if d + 1 < depth {
                a.call(format!("f{}", d + 1));
            }
            a.ret();
        }
        let img = a.assemble().unwrap();
        let mut m = machine_for(&img);
        let mut halted = false;
        for _ in 0..depth * 6 + 10 {
            if let StepOutcome::Event(Event::Halt) = m.step(0) {
                halted = true;
                break;
            }
        }
        prop_assert!(halted, "program must halt");
        prop_assert_eq!(m.cpu(0).get(Reg::Rax), depth as u64);
        // Stack fully unwound.
        prop_assert_eq!(m.cpu(0).rsp(), m.config.host_stack_top(0));
    }
}
