//! Inject single-bit soft errors into hypervisor executions and watch the
//! paper's detection machinery react: fatal hardware exceptions, software
//! assertions, and golden-run differencing for the silent cases.
//!
//! ```text
//! cargo run --release --bin inject_fault
//! ```

use faultsim::{inject, prepare_point, CampaignConfig, FaultOutcome, InjectionSpec};
use guest_sim::Benchmark;
use sim_machine::cpu::FlipTarget;
use sim_machine::Reg;
use xentry::Xentry;

fn main() {
    // The paper's fault-injection setup: Dom0 + two DomUs running the same
    // benchmark; we observe DomU 1 on CPU 1.
    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 7);
    let mut platform = faultsim::campaign_platform(&cfg, 7);
    let mut shim = Xentry::collector();
    platform.boot(1, &mut shim);
    for _ in 0..50 {
        assert!(platform.run_activation(1, &mut shim).outcome.is_healthy());
    }

    // Freeze the platform at the next VM exit and prepare the golden runs.
    let (reason, _) = platform.run_to_exit(1);
    let point = prepare_point(platform, 1, 1, reason, 6, None).expect("golden run");
    println!(
        "injection point: {} (handler runs {} instructions fault-free)",
        reason, point.golden_len
    );
    println!("golden features: {:?}\n", point.golden_features);

    // A gallery of representative faults.
    let cases = [
        (
            "RIP bit 40 (lands in unmapped space)",
            FlipTarget::Rip,
            40u8,
            point.golden_len / 2,
        ),
        (
            "RIP bit 4 (lands on a nearby instruction)",
            FlipTarget::Rip,
            4,
            point.golden_len / 2,
        ),
        (
            "RSP bit 35 (stack accesses fault)",
            FlipTarget::Gpr(Reg::Rsp),
            35,
            5,
        ),
        (
            "RAX bit 3 early in the handler",
            FlipTarget::Gpr(Reg::Rax),
            3,
            2,
        ),
        (
            "R9 bit 12 mid-handler (pointer walk)",
            FlipTarget::Gpr(Reg::R9),
            12,
            point.golden_len / 3,
        ),
        (
            "RFLAGS bit 6 (zero flag) mid-handler",
            FlipTarget::Rflags,
            6,
            point.golden_len / 3,
        ),
        (
            "R12 bit 50 late (dead register)",
            FlipTarget::Gpr(Reg::R12),
            50,
            point.golden_len - 5,
        ),
    ];

    for (desc, target, bit, at_step) in cases {
        let rec = inject(
            &point,
            InjectionSpec {
                target,
                bit,
                at_step,
            },
            None,
        );
        let verdict = match &rec.outcome {
            FaultOutcome::Benign => "benign (not activated / masked)".to_string(),
            FaultOutcome::MaskedAfterEntry => "masked after VM entry".to_string(),
            FaultOutcome::Detected { technique, latency, consequence, .. } => format!(
                "DETECTED by {technique:?} after {latency} instructions (would-be consequence: {consequence:?})"
            ),
            FaultOutcome::Undetected { consequence, category } => {
                format!("UNDETECTED -> {consequence:?} (corrupted: {category:?})")
            }
        };
        println!("{desc:<46} => {verdict}");
    }
}
