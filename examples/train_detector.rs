//! Train the VM-transition detector exactly like the paper's §III-B: run a
//! fault-injection campaign on the simulator, label samples by golden-run
//! differencing, train a decision tree AND a random tree, compare, and dump
//! the deployed rules (the paper's Fig. 6).
//!
//! ```text
//! cargo run --release --bin train_detector [injections]
//! ```

use faultsim::{collect_correct_samples, dataset_from_records, run_campaign, CampaignConfig};
use guest_sim::Benchmark;
use mltree::{evaluate, Dataset, DecisionTree, Label, TrainConfig};
use xentry::{VmTransitionDetector, FEATURE_NAMES};

fn main() {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    // Phase 1: fault injections + fault-free runs -> labeled dataset.
    println!("running {injections} training injections on the freqmine workload...");
    let cfg = CampaignConfig::paper(Benchmark::Freqmine, injections, 42);
    let res = run_campaign(&cfg, None);
    let mut ds = dataset_from_records(&res.records);
    for s in collect_correct_samples(&cfg, injections, 7).samples {
        ds.push(s);
    }
    let (correct, incorrect) = ds.class_counts();
    println!(
        "dataset: {} samples ({correct} correct / {incorrect} incorrect)\n",
        ds.len()
    );

    // Phase 2: train both algorithms (the paper compares them and picks the
    // random tree). Incorrect samples are oversampled 8x for class balance.
    let (train, test) = ds.split(3);
    let mut balanced = Dataset::new(&FEATURE_NAMES);
    for s in &train.samples {
        let k = if s.label == Label::Incorrect { 8 } else { 1 };
        for _ in 0..k {
            balanced.push(s.clone());
        }
    }
    let random_tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, 1));
    let decision_tree = DecisionTree::train(&balanced, &TrainConfig::decision_tree());
    for (name, tree) in [
        ("random tree", &random_tree),
        ("decision tree", &decision_tree),
    ] {
        let cm = evaluate(tree, &test);
        println!(
            "{name:<14} accuracy {:.1}%  FP rate {:.2}%  detection rate {:.1}%  ({} nodes, depth {})",
            100.0 * cm.accuracy(),
            100.0 * cm.false_positive_rate(),
            100.0 * cm.detection_rate(),
            tree.nr_nodes(),
            tree.depth()
        );
    }

    // Phase 3: deploy. The detector serializes to JSON — the offline-train /
    // in-hypervisor-deploy split of the paper's workflow.
    let detector = VmTransitionDetector::new(random_tree);
    let json = detector.to_json();
    std::fs::write("detector.json", &json).expect("write detector.json");
    println!(
        "\ndeployed model written to detector.json ({} bytes)",
        json.len()
    );
    println!("\nFig. 6 — first rules of the deployed tree:");
    for line in detector.dump_rules().lines().take(16) {
        println!("  {line}");
    }
}
