//! Post-mortem analysis: trace the instructions leading up to a detected
//! soft error — the Simics-style trace inspection the paper's methodology
//! is built on.
//!
//! ```text
//! cargo run --release --bin post_mortem
//! ```

use faultsim::CampaignConfig;
use guest_sim::Benchmark;
use mltree::Label;
use sim_machine::cpu::FlipTarget;
use sim_machine::machine::vmcs;
use sim_machine::{step_traced, Event, StepOutcome, TraceRing};
use xentry::{classify_exception, ExceptionClass, FeatureVec, Xentry};
use xentry_fleet::{FlightRecorder, TelemetryRecord};

fn main() {
    // Warm up the usual campaign platform and stop at a VM exit.
    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 77);
    let mut plat = faultsim::campaign_platform(&cfg, 77);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    for _ in 0..60 {
        assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
    }
    let (reason, _) = plat.run_to_exit(1);
    println!("VM exit: {reason}; tracing the handler with a fault injected...\n");

    // Step the handler manually with a trace ring; flip a pointer bit after
    // 120 instructions.
    let mut ring = TraceRing::new(4096);
    let mut steps = 0u64;
    let injected_at = 120u64;
    loop {
        if steps == injected_at {
            plat.machine
                .cpu_mut(1)
                .flip_bit(FlipTarget::Gpr(sim_machine::Reg::R9), 44);
            println!("*** injected: r9 bit 44 flipped after {injected_at} handler instructions\n");
        }
        steps += 1;
        match step_traced(&mut plat.machine, 1, &mut ring) {
            StepOutcome::Retired => {}
            StepOutcome::Event(Event::Exception(e)) => {
                println!("hardware exception: {e}");
                match classify_exception(&e) {
                    ExceptionClass::Fatal => println!(
                        "runtime detection verdict: FATAL — detected after {} instructions\n",
                        steps - injected_at
                    ),
                    ExceptionClass::Benign => println!("(benign exception)\n"),
                }
                break;
            }
            StepOutcome::Event(Event::AssertFail { id, .. }) => {
                println!(
                    "software assertion {id} ({}) fired after {} instructions\n",
                    xen_like::assert_ids::name(id),
                    steps - injected_at
                );
                break;
            }
            StepOutcome::Event(Event::VmEntry) => {
                println!("handler completed; the fault did not surface before VM entry\n");
                break;
            }
            StepOutcome::Event(ev) => {
                println!("unexpected event: {ev:?}");
                break;
            }
        }
        if steps > 50_000 {
            println!("watchdog: handler livelocked\n");
            break;
        }
    }

    println!("last 25 instructions before the event:");
    print!("{}", ring.dump(25));

    // The same incident as the fleet service records it: a per-host
    // flight recorder holds the feature vectors of the activations that
    // led up to the fault, and the partial counters of the activation
    // that died become the trigger entry of the dump.
    let mut recorder = FlightRecorder::new(16);
    for (i, f) in shim.trace.iter().enumerate() {
        recorder.push(&TelemetryRecord::new(0, 1, i as u64, *f), Label::Correct, 1);
    }
    let partial = plat.machine.cpu_mut(1).perf.stop();
    let vmer = plat
        .machine
        .mem
        .peek(plat.machine.config.vmcs_field(1, vmcs::EXIT_REASON))
        .unwrap_or(0) as u16;
    let trigger = FeatureVec::from_sample(vmer, partial);
    recorder.push(
        &TelemetryRecord::new(0, 1, shim.trace.len() as u64, trigger),
        Label::Incorrect,
        1,
    );
    println!("\nfleet flight-recorder view of the same incident:");
    print!("{}", recorder.dump(0).render());
}
