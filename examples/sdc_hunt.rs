//! Hunt for silent data corruptions: the paper's motivating scenario.
//!
//! A soft error strikes during a hypervisor execution, the handler finishes
//! without any crash, the guest resumes — and the application's result is
//! silently wrong. This example runs a small campaign twice, without and
//! with the VM-transition detector, and shows how many SDCs the detector
//! stops *before the guest resumes*.
//!
//! ```text
//! cargo run --release --bin sdc_hunt [injections]
//! ```

use faultsim::{
    collect_correct_samples, dataset_from_records, long_latency_coverage, run_campaign,
    CampaignConfig, Consequence, FaultOutcome,
};
use guest_sim::Benchmark;
use mltree::{Dataset, DecisionTree, Label, TrainConfig};
use xentry::{VmTransitionDetector, FEATURE_NAMES};

fn main() {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);

    // Train a detector first (see train_detector.rs for the full story).
    println!("training the VM-transition detector ({injections} injections)...");
    let train_cfg = CampaignConfig::paper(Benchmark::Freqmine, injections, 1);
    let res = run_campaign(&train_cfg, None);
    let mut ds = dataset_from_records(&res.records);
    for s in collect_correct_samples(&train_cfg, injections, 3).samples {
        ds.push(s);
    }
    let mut balanced = Dataset::new(&FEATURE_NAMES);
    for s in &ds.samples {
        let k = if s.label == Label::Incorrect { 8 } else { 1 };
        for _ in 0..k {
            balanced.push(s.clone());
        }
    }
    let detector = VmTransitionDetector::new(DecisionTree::train(
        &balanced,
        &TrainConfig::random_tree(5, 1),
    ));

    // Evaluation campaign with the detector deployed.
    println!("evaluation campaign ({injections} injections)...\n");
    let eval_cfg = CampaignConfig::paper(Benchmark::Freqmine, injections, 99);
    let eval = run_campaign(&eval_cfg, Some(&detector));

    // Every fault that would have become an APP SDC:
    let mut stopped = Vec::new();
    let mut slipped = Vec::new();
    for r in &eval.records {
        match &r.outcome {
            FaultOutcome::Detected {
                consequence: Some(Consequence::AppSdc),
                technique,
                latency,
                ..
            } => {
                stopped.push((r.target.name(), r.bit, *technique, *latency));
            }
            FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                category,
            } => {
                slipped.push((r.target.name(), r.bit, *category));
            }
            _ => {}
        }
    }

    println!("SDC-class faults stopped before the guest resumed:");
    for (reg, bit, tech, lat) in stopped.iter().take(12) {
        println!("  {reg:<7} bit {bit:<2} caught by {tech:?} after {lat} instructions");
    }
    if stopped.len() > 12 {
        println!("  ... and {} more", stopped.len() - 12);
    }
    println!("\nSDCs that slipped through (the paper's Table II population):");
    for (reg, bit, cat) in &slipped {
        println!("  {reg:<7} bit {bit:<2} corrupted {cat:?}");
    }

    let ll = long_latency_coverage(&eval.records);
    println!(
        "\nSDC detection rate: {}/{} = {:.1}%  (paper: 92.6%)",
        ll.app_sdc.detected,
        ll.app_sdc.total,
        100.0 * ll.app_sdc.rate()
    );
}
