//! Fleet serving quickstart: stand up the detection service, stream
//! activations from a few simulated hosts, hot-swap the model mid-flight,
//! and read the verdicts and metrics back.
//!
//! ```text
//! cargo run --release --bin fleet_quickstart
//! ```

use std::sync::Arc;
use xentry_fleet::{replay, CollectSink, FleetConfig, FleetService};

fn main() {
    // A detector trained on the synthetic activation distribution (use
    // `results/detector.json` from the campaign pipeline in production).
    let detector = replay::synthetic_detector(1);
    println!("model fingerprint: {:016x}", detector.fingerprint());

    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 4,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector.clone(), Arc::clone(&sink) as _);

    // Three hosts report activations; host 2 reports a corrupted one (its
    // performance counters inflated the way a soft error in handler
    // control flow inflates them).
    let trace = replay::synthetic_trace(512, 7);
    for (i, f) in trace.iter().enumerate() {
        for host in 0..3u32 {
            svc.ingest(host, 0, i as u64, *f);
        }
    }
    let mut corrupted = trace[0];
    corrupted.rt *= 10;
    corrupted.br *= 10;
    corrupted.rm *= 10;
    corrupted.wm *= 10;
    svc.ingest(2, 1, trace.len() as u64, corrupted);

    // Deploy a retrained model without stopping the service.
    let v = svc.hot_swap(detector);
    println!("hot-swapped to model version {v} while classifying");

    let snapshot = svc.shutdown();
    println!(
        "\nclassified {} activations at {:.0}/s ({} dropped)",
        snapshot.classified, snapshot.throughput_per_sec, snapshot.dropped
    );
    println!(
        "incorrect verdicts: {} (classify p50 {} ns, p99 {} ns)",
        snapshot.incorrect, snapshot.classify_latency.p50, snapshot.classify_latency.p99
    );

    // Every Incorrect verdict came with a flight-recorder dump of the
    // reporting host's recent activations.
    let incidents = sink.incidents.lock().unwrap();
    for dump in incidents.iter() {
        println!("\n{}", dump.render());
    }
    if incidents.is_empty() {
        println!("\n(no incidents this run)");
    }
}
