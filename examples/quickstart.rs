//! Quickstart: boot a Xen-like platform with a guest VM, attach the Xentry
//! shim, and watch hypervisor activations flow through it.
//!
//! ```text
//! cargo run --release --bin quickstart
//! ```

use guest_sim::{workload_platform, Benchmark};
use sim_machine::{ExitReason, VirtMode};
use xentry::Xentry;

fn main() {
    // A 2-CPU machine: Dom0 on CPU 0, one para-virtualized guest VM running
    // the postmark workload model on CPU 1.
    let mut platform = workload_platform(
        Benchmark::Postmark,
        VirtMode::Para,
        /* cpus */ 2,
        /* guest VMs */ 1,
        /* kernel scale (1 = paper-calibrated rates) */ 16,
        /* seed */ 42,
    );

    // Attach Xentry in collector mode: it intercepts every VM exit, programs
    // the performance counters, and assembles a Table-I feature vector at
    // every VM entry. No model is deployed yet.
    let mut xentry = Xentry::collector();

    // Boot CPU 1: the hypervisor's return stub VM-enters the first VCPU.
    platform.boot(1, &mut xentry);
    println!("booted: guest mode = {:?}\n", platform.machine.cpu(1).mode);

    // Run 2,000 hypervisor activations.
    let activations = platform.run(1, 2000, &mut xentry);
    assert!(activations.iter().all(|a| a.outcome.is_healthy()));

    // Summarize what the hypervisor did.
    let mut by_reason: std::collections::BTreeMap<String, (usize, u64)> = Default::default();
    for a in &activations {
        let label = match a.reason {
            ExitReason::Hypercall(n) => {
                format!(
                    "hypercall {n:2} ({})",
                    xen_like::handlers::hypercalls::NAMES[n as usize]
                )
            }
            other => format!("{other}"),
        };
        let e = by_reason.entry(label).or_default();
        e.0 += 1;
        e.1 += a.handler_insns;
    }
    println!(
        "{:<38} {:>7} {:>12}",
        "VM exit reason", "count", "avg insns"
    );
    let mut rows: Vec<_> = by_reason.into_iter().collect();
    rows.sort_by_key(|(_, (n, _))| std::cmp::Reverse(*n));
    for (reason, (count, insns)) in rows {
        println!(
            "{:<38} {:>7} {:>12.0}",
            reason,
            count,
            insns as f64 / count as f64
        );
    }

    // The shim collected one feature vector per activation.
    println!(
        "\nlast feature vector (Table I): {:?}",
        xentry.last_features().unwrap()
    );
    println!(
        "shim overhead charged: {} cycles over {} activations",
        xentry.added_cycles,
        activations.len()
    );
}
