//! Vendored, API-compatible subset of `serde` for offline builds.
//!
//! The real crates-io `serde` is unavailable in network-restricted
//! environments, so this workspace ships a small replacement built around
//! an explicit [`Value`] data model: `Serialize` lowers a type into a
//! `Value`, `Deserialize` raises one back. The derive macros (re-exported
//! from the sibling `serde_derive` proc-macro crate) generate the same
//! external JSON shapes real serde produces for the type forms this
//! repository uses: named/tuple/unit structs and externally tagged enums
//! with unit, newtype, tuple and struct variants. Existing artifacts under
//! `results/` parse unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// The serialization data model: what JSON can express, with integers kept
/// exact (feature counters and cycle counts exceed `f64`'s 53-bit mantissa).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved so emitted JSON matches declaration order,
    /// like real serde's streaming serializer.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Shared serialization/deserialization error (also used by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }

    pub fn expected(what: &str, ctx: &str, got: &Value) -> Error {
        Error(format!(
            "expected {what} for {ctx}, got {}",
            got.type_name()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a [`Value`] back into `Self`.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-support helper: look up a struct field and deserialize it.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("field `{name}` of {ty}: {e}"))),
        None => Err(Error(format!("missing field `{name}` of {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", "()", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", "tuple", v))?;
                let expect = [$(stringify!($i)),+].len();
                if a.len() != expect {
                    return Err(Error(format!("expected {expect}-tuple, got {} items", a.len())));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Map keys must render to/from strings (JSON object keys).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error(format!("bad integer map key {s:?}")))
            }
        }
    )*};
}

impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "map", v))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "map", v))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "HashSet", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
