//! Vendored, API-compatible subset of `rand` 0.8 for offline builds: the
//! `RngCore`/`Rng`/`SeedableRng` traits and `seq::SliceRandom`, covering
//! exactly what this workspace uses (`gen_range`, `gen_bool`, `choose`,
//! `shuffle`, `seed_from_u64`). Distribution details differ from crates-io
//! rand (simple rejection-free modulo reduction), which is fine here: every
//! consumer treats the stream as an arbitrary deterministic source.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a range can sample (the `gen_range` argument).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.next_u64() % span;
                ((self.start as i64).wrapping_add(off as i64)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `Standard` distribution subset backing `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable deterministic RNGs.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed with SplitMix64, like rand_core.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice sampling helpers.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let u: u8 = rng.gen_range(0..64);
            assert!(u < 64);
            let i: i64 = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&i));
            let z: usize = rng.gen_range(0..7usize);
            assert!(z < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(3);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
