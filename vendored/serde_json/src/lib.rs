//! Vendored, API-compatible subset of `serde_json` for offline builds:
//! `to_string`, `to_string_pretty` and `from_str` over the vendored serde
//! value model. Number handling keeps integers exact (no float round-trip),
//! and pretty output uses 2-space indentation like the real crate, so the
//! committed `results/*.json` artifacts parse and regenerate unchanged.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => emit_float(*f, out),
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn emit_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // report generation total instead of aborting a long campaign.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.eat(b':', "expected ':' after object key")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our emitter;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|n| i64::try_from(n).ok().map(|n| Value::Int(-n)))
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(u64::MAX)),
            ("b".into(), Value::Int(-7)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".into(), Value::Str("x \"y\"\n".into())),
            ("e".into(), Value::Float(2.5)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn large_u64_stays_exact() {
        let n = (1u64 << 63) + 12345;
        let s = to_string(&n).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn integral_floats_reparse_as_floats() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn float_rejected_for_integer_fields() {
        assert!(from_str::<u64>("12.5").is_err());
        assert!(from_str::<i64>("1e3").is_err());
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
