//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset. Parses the item's token stream directly (no `syn`/`quote`, which
//! are unavailable offline) and emits impls of the value-model traits.
//!
//! Supported shapes — everything this repository derives:
//! named/tuple/unit structs and enums with unit, newtype, tuple and struct
//! variants (externally tagged, matching real serde's JSON output).
//! Generic types and `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields (count only; types are irrelevant to codegen).
    Tuple(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1; // '#'
                    if let Some(TokenTree::Group(_)) = self.peek() {
                        self.pos += 1; // [...]
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    self.pos += 1;
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.pos += 1; // pub(crate)
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Consume tokens until a top-level `,` (consumed) or the end. Commas
    /// nested in generic arguments (`HashMap<u16, u64>`) are skipped by
    /// tracking `<`/`>` depth; `->` in fn-pointer types is consumed whole
    /// so its `>` does not perturb the count.
    fn skip_until_comma(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    ',' if depth == 0 => return,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    '-' => {
                        if let Some(TokenTree::Punct(q)) = self.peek() {
                            if q.as_char() == '>' {
                                self.pos += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let Some(TokenTree::Ident(_)) = c.peek() else {
            break;
        };
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        c.skip_until_comma();
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            return count;
        }
        count += 1;
        c.skip_until_comma();
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let Some(TokenTree::Ident(_)) = c.peek() else {
            break;
        };
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Optional explicit discriminant, then the separating comma.
        c.skip_until_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![{}]),",
                            obj_entry(vn, "::serde::Serialize::to_value(x0)")
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![{}]),",
                                binds.join(", "),
                                obj_entry(
                                    vn,
                                    &format!(
                                        "::serde::Value::Array(::std::vec![{}])",
                                        items.join(", ")
                                    )
                                )
                            )
                        }
                        Fields::Named(fs) => {
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    obj_entry(f, &format!("::serde::Serialize::to_value({f})"))
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![{}]),",
                                fs.join(", "),
                                obj_entry(
                                    vn,
                                    &format!(
                                        "::serde::Value::Object(::std::vec![{}])",
                                        entries.join(", ")
                                    )
                                )
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         other => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"null\", \"{name}\", other)),\n\
                     }}"
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                        .collect();
                    format!(
                        "let __a = __v.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", \"{name}\", __v))?;\n\
                         if __a.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"{name}: expected {n} elements, got {{}}\", \
                                 __a.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\", \"{name}\")?"))
                        .collect();
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", \"{name}\", __v))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let ctx = format!("{name}::{vn}");
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __a = __inner.as_array().ok_or_else(|| \
                                         ::serde::Error::expected(\"array\", \"{ctx}\", __inner))?;\n\
                                     if __a.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::msg(\
                                             ::std::format!(\"{ctx}: expected {n} elements, \
                                             got {{}}\", __a.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::field(__obj, \"{f}\", \"{ctx}\")?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __obj = __inner.as_object().ok_or_else(|| \
                                         ::serde::Error::expected(\"object\", \"{ctx}\", __inner))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {units}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::msg(\
                                         ::std::format!(\"unknown {name} variant \
                                         {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"enum\", \"{name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
