//! Vendored, API-compatible subset of `proptest` for offline builds.
//!
//! Implements the pieces this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, ranges,
//! tuples, `Just`, `any`, `prop_oneof!`, `collection::vec`, and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros. Cases are generated
//! from a deterministic per-test RNG; failing inputs are reported by the
//! assertion message. Shrinking is intentionally not implemented — a
//! failing case prints its (already small) generated inputs via the
//! assertion panic instead.

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic test RNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// `prop_oneof!` support: uniform choice among boxed strategies.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128 as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy behind `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options = ::std::vec![
            $({
                let boxed: ::std::boxed::Box<
                    dyn $crate::strategy::Strategy<Value = _>,
                > = ::std::boxed::Box::new($s);
                boxed
            }),+
        ];
        $crate::strategy::Union::new(options)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _ in 0..__config.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, z in 0u8..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!(z < 2);
        }

        #[test]
        fn maps_and_tuples_compose(v in crate::collection::vec((0u64..10, any::<bool>()), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _b) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn oneof_picks_every_branch(pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        use crate::test_runner::TestRng;
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        let mut rng = TestRng::for_test("flat_map");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
