//! Vendored ChaCha8 RNG for offline builds. Implements the vendored `rand`
//! traits with a real ChaCha8 block function (8 rounds), seeded via the
//! standard 32-byte key. The exact output stream is not bit-identical to
//! crates-io `rand_chacha` (different word-extraction order is permitted);
//! every consumer in this workspace only requires a deterministic,
//! well-mixed stream per seed.

use rand::{RngCore, SeedableRng};

/// A ChaCha-based deterministic RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_is_reasonably_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
