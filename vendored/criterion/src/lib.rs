//! Vendored minimal benchmark harness, API-compatible with the subset of
//! `criterion` 0.5 this workspace uses: `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; median, mean and min per-iteration times are
//! printed to stdout. No statistical analysis, plots or baselines — this
//! exists so `cargo bench` produces useful numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (display-only in this subset).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs closures and accumulates per-sample timings.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    smoke: bool,
}

impl Bencher {
    fn new(sample_count: usize, smoke: bool) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
            smoke,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            // `--test` mode: prove the benchmark compiles and runs, skip
            // calibration and timing entirely (CI's perf-rot guard).
            black_box(f());
            self.iters_per_sample = 1;
            self.samples.clear();
            return;
        }
        // Calibrate the iteration count so one sample takes ~2 ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.smoke {
            println!("{id:<40} ok (smoke)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean: f64 = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} median {} mean {} min {} ({} iters x {} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            self.iters_per_sample,
            per_iter.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            // `cargo bench ... -- --test` runs each benchmark body once
            // with no timing, like real criterion's test mode.
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.smoke);
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples, self.criterion.smoke);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
