//! Loopback distributed integration test: real processes, real sockets.
//!
//! `run_distributed` spawns host-agent child processes (the `wire-host`
//! bin of this package) plus an in-process aggregator, SIGKILLs one
//! host mid-run and restarts it with a higher incarnation, and
//! publishes a retrained model epoch over the wire. The assertions here
//! are the ISSUE's acceptance criteria verbatim: the fleet-wide
//! accounting identity is exact across the kill/reconnect, and the
//! pushed epoch is admitted through `hot_swap_validated` on every
//! surviving host.

use std::path::PathBuf;
use std::time::Duration;
use xentry_wire::{run_distributed, DistributedConfig};

fn test_config(hosts: usize, out: &str) -> DistributedConfig {
    let mut cfg = DistributedConfig::quick(hosts);
    // Smaller than the CLI quick run — CI test budget — but still
    // throttled enough that the kill lands mid-replay.
    cfg.records_per_host = 12_000;
    cfg.rate_per_host = 12_000.0;
    cfg.child_exe = PathBuf::from(env!("CARGO_BIN_EXE_wire-host"));
    cfg.timeout = Duration::from_secs(90);
    cfg.out = std::env::temp_dir().join(out);
    cfg
}

#[test]
fn distributed_replay_survives_kill_and_converges() {
    let cfg = test_config(3, "xentry-wire-distributed");
    let report = run_distributed(&cfg).expect("distributed run completes");

    // --- Accounting identity, exact, across a forced kill/reconnect.
    let fleet = &report.aggregator.fleet;
    assert_eq!(
        fleet.ingested,
        fleet.classified + fleet.lost,
        "fleet-wide ingested == classified + lost must be exact"
    );
    assert_eq!(fleet.in_flight, 0, "finalization closes every window");
    assert!(report.accounting.identity_exact);
    assert_eq!(fleet.identity_violations, 0);

    // --- The kill/reconnect actually happened and was reconciled.
    let killed = report.killed_host.expect("drill configured");
    let victim = report
        .aggregator
        .hosts
        .iter()
        .find(|h| h.id == killed)
        .expect("victim tracked");
    assert!(victim.sessions >= 2, "victim reconnected");
    assert!(
        victim.incarnation >= 2,
        "victim restarted as a new incarnation"
    );
    assert!(fleet.reconnects >= 1);
    // The SIGKILLed incarnation sent no Bye: whatever its last summary
    // held in flight was folded into lost, not silently dropped.
    assert_eq!(
        victim.counters.ingested,
        victim.counters.classified + victim.counters.lost
    );

    // --- Model epoch propagated and admitted on every host.
    assert!(report.model.published_epoch > 0);
    assert!(
        report.model.converged,
        "every host admitted the pushed epoch"
    );
    assert_eq!(report.model.hosts_converged, report.model.hosts_total);
    for host in &report.aggregator.hosts {
        assert_eq!(host.model_epoch, report.aggregator.published_epoch);
        assert_eq!(
            host.model_fingerprint,
            report.aggregator.published_fingerprint
        );
        assert!(host.clean_bye, "every final incarnation exited cleanly");
    }
    // Admission went through hot_swap_validated on each child (the
    // agent counts them), and none diverged.
    assert_eq!(fleet.model_divergences, 0);
    for child in report
        .children
        .iter()
        .filter(|c| c.agent.model_epoch == report.model.published_epoch)
    {
        assert!(child.agent.models_admitted >= 1);
    }
    assert!(
        report
            .children
            .iter()
            .all(|c| c.agent.model_epoch == report.model.published_epoch),
        "every surviving child converged on the published epoch"
    );

    // --- Receipts: the scrape worked and the JSON receipt landed.
    assert!(report.scrape.ok, "mid-run /metrics self-scrape");
    assert_eq!(report.scrape.host_series, 3);
    let path = report.write(&cfg.out).expect("write receipt");
    let json = std::fs::read_to_string(path).expect("receipt readable");
    assert!(json.contains("\"identity_exact\": true"));
    assert!(report.is_clean());
}

#[test]
fn distributed_replay_without_drills_is_exact_too() {
    let mut cfg = test_config(2, "xentry-wire-distributed-plain");
    cfg.records_per_host = 6_000;
    cfg.rate_per_host = 0.0; // unthrottled: fastest possible run
    cfg.kill_restart_host = None;
    cfg.publish_model = false;
    let report = run_distributed(&cfg).expect("plain run completes");
    let fleet = &report.aggregator.fleet;
    assert_eq!(fleet.ingested, fleet.classified + fleet.lost);
    assert_eq!(fleet.reconciled_lost, 0, "clean Byes strand nothing");
    assert_eq!(fleet.sessions, 2);
    assert_eq!(fleet.reconnects, 0);
    assert!(report.children.iter().all(|c| c.drained));
    assert!(report.is_clean());
}
