//! Verdict parity: the fleet service must be a pure distribution layer.
//! Every label it emits must be bit-identical to calling
//! `VmTransitionDetector::classify` directly on the same feature vector
//! with the detector version stamped on the verdict — including for
//! records classified while a hot-swap was in flight. Shard workers
//! classify their drained queue through the compiled batch path, so these
//! tests also pin batch == single-sample == boxed-walker equivalence at
//! fleet scale.
//!
//! The replay driver walks the trace deterministically (host `h` sends
//! `trace[(h * 7919 + i) % len]` as seq `i`), so the test can recompute
//! the exact input of every collected verdict.

use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
use std::sync::Arc;
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};
use xentry_fleet::{replay, CollectSink, FleetConfig, FleetService, ReplayConfig};

/// The deterministic replay mapping, mirrored from `replay::replay`.
fn replayed_features(trace: &[FeatureVec], host: u32, seq: u64) -> FeatureVec {
    trace[(host as usize * 7919 + seq as usize) % trace.len()]
}

/// A detector with a very different decision boundary from the synthetic
/// one: anything with RT >= 500 is Incorrect, which flags the entire
/// vmer-40 profile (base RT ~900) that the synthetic detector accepts.
fn aggressive_detector() -> VmTransitionDetector {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for i in 0..400u64 {
        ds.push(Sample::new(
            vec![17 + i % 24, 10 + i % 480, 5, 3, 2],
            Label::Correct,
        ));
        ds.push(Sample::new(
            vec![17 + i % 24, 520 + i * 3, 5, 3, 2],
            Label::Incorrect,
        ));
    }
    VmTransitionDetector::new(DecisionTree::train(&ds, &TrainConfig::decision_tree()))
}

#[test]
fn fleet_verdicts_match_direct_classify() {
    let det = replay::synthetic_detector(1);
    let sink = Arc::new(CollectSink::default());
    // Queues sized to hold every record: parity needs drops == 0 so the
    // verdict set covers the whole replay.
    let cfg = FleetConfig {
        shards: 4,
        queue_capacity: 1 << 15,
        batch: 32,
        recorder_depth: 8,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, det.clone(), Arc::clone(&sink) as _);

    let trace = replay::synthetic_trace(4096, 11);
    let rep = replay::replay(
        &svc,
        &trace,
        &ReplayConfig {
            hosts: 4,
            records_per_host: 4000,
            rate_per_host: 0.0,
        },
    );
    assert_eq!(
        rep.rejected, 0,
        "queues were sized to absorb the whole replay"
    );
    let snap = svc.shutdown();
    assert_eq!(snap.classified, 16_000);

    let verdicts = sink.verdicts.lock().unwrap();
    assert_eq!(verdicts.len(), 16_000);
    let mut incorrect = 0u64;
    for v in verdicts.iter() {
        assert_eq!(v.model_version, 1);
        assert_eq!(v.model_fingerprint, det.fingerprint());
        let f = replayed_features(&trace, v.host, v.seq);
        assert_eq!(
            v.label,
            det.classify(&f),
            "host {} seq {} diverged from direct classification",
            v.host,
            v.seq
        );
        // Triangulate: the batch-classified verdict must also match the
        // boxed (uncompiled) walker on the retained training-side tree.
        assert_eq!(
            v.label,
            det.tree().classify(&f.columns()),
            "host {} seq {} diverged from the boxed walker",
            v.host,
            v.seq
        );
        if v.label == Label::Incorrect {
            incorrect += 1;
        }
    }
    assert_eq!(incorrect, snap.incorrect);
    assert!(
        incorrect > 0,
        "the synthetic trace plants anomalies; parity on a single label proves little"
    );
}

#[test]
fn fleet_verdicts_match_direct_classify_across_hot_swap() {
    let d1 = replay::synthetic_detector(1);
    let d2 = aggressive_detector();
    assert_ne!(d1.fingerprint(), d2.fingerprint());
    // The swap path ships detectors as JSON: the rebuilt detector (tree +
    // recompiled arena + recomputed fingerprint) must be indistinguishable
    // from the original, so a swap can never pair an arena with the wrong
    // fingerprint.
    let rebuilt = VmTransitionDetector::from_json(&d2.to_json()).unwrap();
    assert_eq!(rebuilt.fingerprint(), d2.fingerprint());

    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 1 << 15,
        batch: 16,
        recorder_depth: 8,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, d1.clone(), Arc::clone(&sink) as _);

    let trace = replay::synthetic_trace(2048, 23);
    // Throttle the senders so the replay spans ~150 ms, and deploy the
    // second model from another thread while it is in flight.
    let rep = std::thread::scope(|s| {
        let svc_ref = &svc;
        let d2 = d2.clone();
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert_eq!(svc_ref.hot_swap(d2), 2);
        });
        replay::replay(
            svc_ref,
            &trace,
            &ReplayConfig {
                hosts: 2,
                records_per_host: 3000,
                rate_per_host: 20_000.0,
            },
        )
    });
    assert_eq!(rep.rejected, 0);
    let snap = svc.shutdown();
    assert_eq!(snap.classified, 6000);
    assert_eq!(snap.swaps, 1);

    let verdicts = sink.verdicts.lock().unwrap();
    assert_eq!(verdicts.len(), 6000);
    let mut by_version = [0u64; 2];
    for v in verdicts.iter() {
        let model = match v.model_version {
            1 => &d1,
            2 => &d2,
            other => panic!("verdict stamped with unknown model version {other}"),
        };
        assert_eq!(v.model_fingerprint, model.fingerprint());
        let f = replayed_features(&trace, v.host, v.seq);
        assert_eq!(
            v.label,
            model.classify(&f),
            "host {} seq {} diverged under model v{}",
            v.host,
            v.seq,
            v.model_version
        );
        assert_eq!(
            v.label,
            model.tree().classify(&f.columns()),
            "host {} seq {} diverged from the boxed walker under model v{}",
            v.host,
            v.seq,
            v.model_version
        );
        by_version[(v.model_version - 1) as usize] += 1;
    }
    // The swap landed mid-replay: both models must have classified a
    // meaningful share, or the "across hot-swap" claim is vacuous.
    assert!(
        by_version[0] > 100,
        "v1 classified only {} records",
        by_version[0]
    );
    assert!(
        by_version[1] > 100,
        "v2 classified only {} records",
        by_version[1]
    );

    // And the two models genuinely disagree on this trace, so parity per
    // version is not trivially the same check twice.
    let disagreements = trace
        .iter()
        .filter(|f| d1.classify(f) != d2.classify(f))
        .count();
    assert!(
        disagreements > 100,
        "models disagree on only {disagreements} records"
    );
}

/// Block until the service has drained everything it accepted so far.
fn drain(svc: &FleetService) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let snap = svc.snapshot();
        if snap.classified + snap.lost == snap.ingested {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service failed to drain: {} classified + {} lost of {} ingested",
            snap.classified,
            snap.lost,
            snap.ingested
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn rollback_restores_verdict_parity_with_pre_swap_model() {
    let d1 = replay::synthetic_detector(1);
    let d2 = aggressive_detector();
    assert_ne!(d1.fingerprint(), d2.fingerprint());

    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 1 << 15,
        batch: 16,
        recorder_depth: 8,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, d1.clone(), Arc::clone(&sink) as _);

    let trace = replay::synthetic_trace(2048, 31);
    let wave = ReplayConfig {
        hosts: 2,
        records_per_host: 1500,
        rate_per_host: 0.0,
    };

    // Wave 1 under the original model; drain so the deploy boundary is
    // crisp and every wave maps 1:1 to a model version.
    assert_eq!(replay::replay(&svc, &trace, &wave).rejected, 0);
    drain(&svc);

    // The aggressive model fails the strict canary (it relabels the
    // golden vectors captured under d1), but a relaxed deploy accepts it:
    // structurally sound, self-consistent, just different behavior.
    assert!(svc.hot_swap_validated(d2.clone(), true).is_err());
    assert_eq!(svc.hot_swap_validated(d2.clone(), false).unwrap(), 2);
    assert_eq!(svc.model_fingerprint(), d2.fingerprint());

    // Wave 2 under the replacement.
    assert_eq!(replay::replay(&svc, &trace, &wave).rejected, 0);
    drain(&svc);

    // Roll back: a fresh epoch republishing the pre-swap detector.
    assert_eq!(svc.rollback_model(), Some(3));
    assert_eq!(svc.model_fingerprint(), d1.fingerprint());

    // Wave 3 must classify exactly like the pre-swap model again.
    assert_eq!(replay::replay(&svc, &trace, &wave).rejected, 0);
    let snap = svc.shutdown();
    assert_eq!(snap.classified, 9000);
    assert_eq!(snap.lost, 0);
    assert_eq!(snap.swaps, 1);
    assert_eq!(snap.swap_rejections, 1);
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(snap.model_version, 3);
    assert_eq!(snap.model_fingerprint, d1.fingerprint());

    let verdicts = sink.verdicts.lock().unwrap();
    assert_eq!(verdicts.len(), 9000);
    let mut by_version = [0u64; 3];
    for v in verdicts.iter() {
        let model = match v.model_version {
            1 | 3 => &d1, // version 3 is the rollback epoch of d1
            2 => &d2,
            other => panic!("verdict stamped with unknown model version {other}"),
        };
        assert_eq!(v.model_fingerprint, model.fingerprint());
        let f = replayed_features(&trace, v.host, v.seq);
        assert_eq!(
            v.label,
            model.classify(&f),
            "host {} seq {} diverged under model v{}",
            v.host,
            v.seq,
            v.model_version
        );
        by_version[(v.model_version - 1) as usize] += 1;
    }
    // Drained wave boundaries: each wave classified entirely under its
    // own version, and the rollback epoch really served traffic.
    assert_eq!(by_version, [3000, 3000, 3000]);
}
