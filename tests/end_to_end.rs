//! End-to-end integration: the full paper pipeline at smoke scale.
//!
//! Boot the platform → run workloads → fault-injection campaign → train the
//! VM-transition detector → deploy it → verify the deployed system detects
//! more than the runtime-only baseline and never flags fault-free runs
//! beyond its measured false-positive rate.

use faultsim::{coverage_breakdown, dataset_from_records, run_campaign, CampaignConfig};
use guest_sim::Benchmark;
use mltree::{evaluate, DecisionTree, Label, TrainConfig};
use xentry::{VmTransitionDetector, Xentry, XentryConfig, FEATURE_NAMES};

fn small_campaign(seed: u64, n: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper(Benchmark::Freqmine, n, seed);
    cfg.threads = 2;
    cfg.warmup = 30;
    cfg
}

#[test]
fn full_pipeline_improves_coverage() {
    // Phase A: gather training data without a detector.
    let cfg = small_campaign(11, 800);
    let res = run_campaign(&cfg, None);
    let mut ds = dataset_from_records(&res.records);
    for s in faultsim::collect_correct_samples(&cfg, 1000, 5).samples {
        ds.push(s);
    }
    let (train, test) = ds.split(3);
    // Oversample the rare incorrect class.
    let mut balanced = mltree::Dataset::new(&FEATURE_NAMES);
    for s in &train.samples {
        let k = if s.label == Label::Incorrect { 8 } else { 1 };
        for _ in 0..k {
            balanced.push(s.clone());
        }
    }
    let tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, 1));
    let cm = evaluate(&tree, &test);
    assert!(cm.accuracy() > 0.85, "tree accuracy {:.3}", cm.accuracy());
    assert!(
        cm.false_positive_rate() < 0.08,
        "fp {:.3}",
        cm.false_positive_rate()
    );

    // Phase B: evaluation with and without the deployed detector.
    let det = VmTransitionDetector::new(tree);
    let base = run_campaign(&small_campaign(77, 800), None);
    let with = run_campaign(&small_campaign(77, 800), Some(&det));
    let cov_base = coverage_breakdown(&base.records);
    let cov_with = coverage_breakdown(&with.records);
    assert!(cov_with.vm_transition > 0, "detector caught nothing");
    assert!(
        cov_with.coverage() >= cov_base.coverage(),
        "deploying the detector must not reduce coverage: {} vs {}",
        cov_with.coverage(),
        cov_base.coverage()
    );
    // Paper shape: hardware exceptions dominate both ways.
    assert!(
        cov_with.hw_exception * 2 > cov_with.manifested,
        "hw exceptions should dominate: {cov_with:?}"
    );
}

#[test]
fn fault_free_run_with_detector_stays_healthy() {
    // A deployed detector must not break a fault-free platform; its
    // positives (false positives here) only cost recovery.
    let cfg = small_campaign(3, 10);
    let res = run_campaign(&cfg, None);
    let mut ds = dataset_from_records(&res.records);
    for s in faultsim::collect_correct_samples(&cfg, 600, 9).samples {
        ds.push(s);
    }
    let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(5, 2));
    let det = VmTransitionDetector::new(tree);

    let mut plat = faultsim::campaign_platform(&cfg, 123);
    let mut shim = Xentry::new(XentryConfig::overhead(), Some(det));
    plat.boot(1, &mut shim);
    let acts = plat.run(1, 500, &mut shim);
    assert_eq!(acts.len(), 500, "died: {:?}", acts.last().unwrap().outcome);
    let fp_rate = shim.positives as f64 / shim.classified.max(1) as f64;
    assert!(
        fp_rate < 0.05,
        "fault-free positive rate too high: {fp_rate}"
    );
}

#[test]
fn campaign_is_deterministic_per_seed_single_threaded() {
    let mut cfg = small_campaign(42, 60);
    cfg.threads = 1;
    let a = run_campaign(&cfg, None);
    let b = run_campaign(&cfg, None);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(format!("{:?}", x.outcome), format!("{:?}", y.outcome));
        assert_eq!(x.vmer, y.vmer);
        assert_eq!(x.bit, y.bit);
    }
}
