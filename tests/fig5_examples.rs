//! Reproduce the paper's Fig. 5: the two archetypes of *incorrect but
//! valid* control flow that only VM-transition detection can catch.
//!
//! (a) **Extra code** — "an error occurs in rcx, the counter of rep mov":
//!     a corrupted loop counter adds (or removes) dynamic instructions; the
//!     executed instructions are all valid.
//! (b) **Incorrect branch target** — "an error occurs in eax" before
//!     `test eax, eax; je vcpu_mark_events_pending`: the branch goes the
//!     other, legitimate way.
//!
//! Both cases must complete the activation with *different performance
//! counter footprints* — the signal Table I's features carry.

use faultsim::{inject, prepare_point, CampaignConfig, FaultOutcome, InjectionSpec};
use guest_sim::Benchmark;
use sim_machine::cpu::FlipTarget;
use sim_machine::{ExitReason, Reg};
use xentry::Xentry;

/// Drive the platform to an exit matching `want`, and prepare the point.
fn point_for_reason(want: ExitReason, seed: u64) -> Option<faultsim::InjectionPoint> {
    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, seed);
    let mut plat = faultsim::campaign_platform(&cfg, seed);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    for _ in 0..600 {
        let (reason, _) = plat.run_to_exit(1);
        if reason == want {
            return prepare_point(plat, 1, 1, reason, 6, None);
        }
        plat.run_handler(1, reason, 0, &mut shim);
    }
    None
}

/// Fig. 5(a): flip a low bit of a live loop counter mid-loop and observe an
/// execution that completes with a different dynamic instruction count.
#[test]
fn fig5a_corrupted_loop_counter_changes_instruction_count() {
    // console_io's character loop keeps its counter in r13.
    let point = point_for_reason(ExitReason::Hypercall(18), 5).expect("console_io exit");
    let mut witnessed = false;
    // Sweep injection points across the handler; low bits of the counter.
    for at in (0..point.golden_len).step_by(37) {
        for bit in [0u8, 1, 2] {
            let rec = inject(
                &point,
                InjectionSpec {
                    target: FlipTarget::Gpr(Reg::R13),
                    bit,
                    at_step: at,
                },
                None,
            );
            let Some(f) = rec.features else { continue };
            if f.rt != rec.golden_features.rt {
                // Valid-but-longer (or shorter) execution: Fig. 5(a).
                witnessed = true;
                assert!(
                    !matches!(rec.outcome, FaultOutcome::Benign),
                    "a changed instruction count implies an activated fault"
                );
            }
        }
    }
    assert!(
        witnessed,
        "no loop-counter corruption produced Fig. 5(a) behaviour"
    );
}

/// Fig. 5(b): flip a branch-condition register right before the
/// `evtchn_set_pending` masked-check and observe a completed execution that
/// took the other (valid) path.
#[test]
fn fig5b_corrupted_branch_condition_takes_other_valid_path() {
    let point = point_for_reason(ExitReason::Hypercall(32), 9).expect("event_channel_op exit");
    let mut completed_with_diff = 0;
    let mut crashed = 0;
    for at in (0..point.golden_len).step_by(17) {
        // r9 carries the masked-bit test inside evtchn_set_pending.
        let rec = inject(
            &point,
            InjectionSpec {
                target: FlipTarget::Gpr(Reg::R9),
                bit: 1,
                at_step: at,
            },
            None,
        );
        match &rec.outcome {
            FaultOutcome::Detected { .. } => crashed += 1,
            FaultOutcome::Undetected { .. } | FaultOutcome::MaskedAfterEntry => {
                if let Some(f) = rec.features {
                    if f.columns() != rec.golden_features.columns() {
                        completed_with_diff += 1;
                    }
                }
            }
            FaultOutcome::Benign => {}
        }
    }
    // The branch-flip archetype must occur: completed activations whose
    // footprint differs from the fault-free run.
    assert!(
        completed_with_diff > 0 || crashed > 0,
        "flipping branch-condition bits had no observable effect at all"
    );
}

/// RFLAGS flips directly invert branch outcomes — the purest Fig. 5(b).
#[test]
fn fig5b_zero_flag_flip_is_valid_but_incorrect() {
    let point = point_for_reason(ExitReason::Hypercall(32), 21).expect("event_channel_op exit");
    let mut diverged = 0;
    for at in (0..point.golden_len).step_by(7) {
        let rec = inject(
            &point,
            // Bit 6 = ZF: every flip lands between some cmp and its jcc.
            InjectionSpec {
                target: FlipTarget::Rflags,
                bit: 6,
                at_step: at,
            },
            None,
        );
        if rec.outcome.manifested() {
            diverged += 1;
        }
    }
    assert!(diverged > 0, "ZF flips never altered control flow");
}
