//! Flight-trace integration: ring overflow semantics, trace-id
//! propagation ingest→verdict→incident dump, the live scrape endpoint,
//! and the disabled-tracing configuration.

use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
use std::sync::Arc;
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};
use xentry_fleet::{
    http_get, parse_exposition, CollectSink, FleetConfig, FleetService, SpanKind, TraceRing,
};

/// Detector with a planted decision boundary: on vmer 17, rt around
/// 4*base is Incorrect (same construction as the service unit tests).
fn detector(base: u64) -> VmTransitionDetector {
    let mut d = Dataset::new(&FEATURE_NAMES);
    for i in 0..40u64 {
        d.push(Sample::new(
            vec![17, base + i % 10, 5, 3, 2],
            Label::Correct,
        ));
        d.push(Sample::new(
            vec![17, base * 4 + i, 25, 9, 6],
            Label::Incorrect,
        ));
    }
    VmTransitionDetector::new(DecisionTree::train(&d, &TrainConfig::decision_tree()))
}

fn ok_features(base: u64) -> FeatureVec {
    FeatureVec {
        vmer: 17,
        rt: base,
        br: 5,
        rm: 3,
        wm: 2,
    }
}

fn bad_features(base: u64) -> FeatureVec {
    FeatureVec {
        vmer: 17,
        rt: base * 4 + 5,
        br: 25,
        rm: 9,
        wm: 6,
    }
}

#[test]
fn ring_overflow_keeps_newest_and_counts_drops_exactly() {
    let ring = TraceRing::new(16);
    for i in 0..100u64 {
        ring.push(SpanKind::Ingest, i, 0, i + 1, 0);
    }
    assert_eq!(ring.total(), 100);
    assert_eq!(ring.dropped(), 84, "dropped = total - capacity, exactly");
    let events = ring.snapshot(0);
    assert_eq!(events.len(), 16);
    // Oldest-drop: the survivors are the newest 16, oldest first.
    let ids: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
    assert_eq!(ids, (85..=100).collect::<Vec<u64>>());
}

#[test]
fn trace_id_flows_from_ingest_through_verdict_into_dump() {
    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: 1024,
        batch: 16,
        recorder_depth: 8,
        trace_depth: 4096,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
    for seq in 0..200u64 {
        let f = if seq == 150 {
            bad_features(100)
        } else {
            ok_features(100)
        };
        assert!(svc.ingest(3, 0, seq, f));
    }
    let tracer = svc.tracer();
    let snap = svc.shutdown();
    assert_eq!(snap.classified, 200);
    assert_eq!(snap.incorrect, 1);
    assert!(snap.trace_events > 0);

    // Every verdict carries a live, unique trace id.
    let verdicts = sink.verdicts.lock().unwrap();
    assert_eq!(verdicts.len(), 200);
    let mut ids: Vec<u64> = verdicts.iter().map(|v| v.trace_id).collect();
    assert!(ids.iter().all(|&id| id != 0), "all records were traced");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 200, "trace ids are unique per record");
    let incorrect = verdicts
        .iter()
        .find(|v| v.label == Label::Incorrect)
        .expect("the planted anomaly was flagged");
    assert_eq!(incorrect.seq, 150);

    // The incident dump keys on the same id, remembers it on the
    // trigger activation, and attaches shard trace events.
    let incidents = sink.incidents.lock().unwrap();
    assert_eq!(incidents.len(), 1);
    let dump = &incidents[0];
    assert_eq!(dump.trace_id, incorrect.trace_id);
    assert_eq!(dump.trigger.trace_id, incorrect.trace_id);
    assert!(!dump.trace.is_empty(), "dump embeds shard trace events");
    assert!(
        dump.trace.iter().all(|e| e.lane == 0),
        "events come from the trigger's shard lane"
    );

    // The tracer itself closed the chain: the same id appears on an
    // ingest event and a verdict event (the acceptance-criteria link).
    let events = tracer.events();
    let has = |kind: SpanKind| {
        events
            .iter()
            .any(|e| e.kind == kind && e.trace_id == incorrect.trace_id)
    };
    assert!(has(SpanKind::Ingest), "ingest span for the anomaly's id");
    assert!(has(SpanKind::QueueWait), "queue-wait span for the id");
    assert!(has(SpanKind::Verdict), "verdict span for the id");
    assert!(
        events.iter().any(|e| e.kind == SpanKind::BatchClassify),
        "classify batch spans exist"
    );
}

#[test]
fn scrape_endpoint_serves_metrics_health_and_trace() {
    let cfg = FleetConfig {
        shards: 2,
        queue_capacity: 1024,
        batch: 16,
        recorder_depth: 4,
        trace_depth: 4096,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector(100), Arc::new(xentry_fleet::NullSink));
    let server = svc
        .serve_telemetry("127.0.0.1:0")
        .expect("bind scrape port");
    let addr = server.addr();
    for seq in 0..300u64 {
        svc.ingest((seq % 4) as u32, 0, seq, ok_features(100));
    }
    while svc.snapshot().classified < 300 {
        std::thread::yield_now();
    }

    let (status, body) = http_get(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    let samples = parse_exposition(&body).expect("exposition parses");
    let count = |name: &str| samples.iter().filter(|(n, _, _)| n == name).count();
    assert_eq!(count("xentry_fleet_ingested_total"), 1);
    assert_eq!(count("xentry_fleet_shard_classified_total"), 2, "per shard");
    assert!(count("xentry_fleet_epoch_verdicts_total") >= 1, "per epoch");
    assert!(count("xentry_fleet_queue_latency_ns_bucket") >= 2);
    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
            .unwrap()
    };
    assert_eq!(value("xentry_fleet_classified_total"), 300.0);
    assert!(value("xentry_fleet_trace_events_total") > 0.0);

    let (status, health) = http_get(addr, "/healthz").expect("scrape /healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let (status, trace) = http_get(addr, "/trace").expect("scrape /trace");
    assert_eq!(status, 200);
    assert!(trace.contains("\"traceEvents\""), "chrome trace shape");
    assert!(trace.contains("\"ingest\""), "ingest spans exported");

    let (status, _) = http_get(addr, "/nope").expect("scrape unknown path");
    assert_eq!(status, 404);

    server.shutdown();
    svc.shutdown();
}

#[test]
fn disabled_tracing_is_inert_and_free_of_ids() {
    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: 256,
        batch: 8,
        recorder_depth: 4,
        trace_depth: 0,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector(100), Arc::clone(&sink) as _);
    for seq in 0..50u64 {
        assert!(svc.ingest(0, 0, seq, ok_features(100)));
    }
    let tracer = svc.tracer();
    assert!(!tracer.enabled());
    let snap = svc.shutdown();
    assert_eq!(snap.classified, 50);
    assert_eq!(snap.trace_events, 0);
    assert_eq!(snap.trace_dropped, 0);
    assert!(tracer.events().is_empty());
    let verdicts = sink.verdicts.lock().unwrap();
    assert!(
        verdicts.iter().all(|v| v.trace_id == 0),
        "disabled tracing stamps no ids"
    );
}
