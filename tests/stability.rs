//! Long-run stability invariants.
//!
//! The paper's software assertions are only usable as error signals because
//! "error-free executions should not trigger any of these assertions" —
//! the central invariant this suite hammers: long fault-free runs across
//! every benchmark and both virtualization modes must never fire an
//! assertion, never take a host-mode exception, and never hang.

use guest_sim::{workload_platform, Benchmark};
use sim_machine::VirtMode;
use xentry::{Technique, Xentry, XentryConfig};

/// 4,000 activations per (benchmark, mode) with full detection attached:
/// zero runtime-detection events allowed.
#[test]
fn fault_free_runs_never_trigger_runtime_detection() {
    for mode in [VirtMode::Para, VirtMode::Hvm] {
        for b in Benchmark::ALL {
            let mut plat = workload_platform(b, mode, 2, 1, 16, 1234);
            let mut shim = Xentry::new(XentryConfig::detection(), None);
            plat.boot(1, &mut shim);
            let acts = plat.run(1, 4000, &mut shim);
            assert_eq!(
                acts.len(),
                4000,
                "{} {mode:?}: died at {} with {:?}",
                b.name(),
                acts.len(),
                acts.last().unwrap().outcome
            );
            let rt_detections = shim
                .detections
                .iter()
                .filter(|d| matches!(d.technique, Technique::HwException | Technique::SwAssertion))
                .count();
            assert_eq!(
                rt_detections,
                0,
                "{} {mode:?}: runtime detection fired on a fault-free run: {:?}",
                b.name(),
                shim.detections
            );
        }
    }
}

/// An SMP domain: two VCPUs of one guest pinned to two CPUs both make
/// progress and the shared burst counter advances from both sides.
#[test]
fn smp_domain_runs_on_two_cpus() {
    use xen_like::{DomainSpec, Topology};
    let topo = Topology {
        nr_cpus: 2,
        domains: vec![xen_like::DomainSpec { nr_vcpus: 2 }],
        virt_mode: VirtMode::Para,
        seed: 9,
        cycle_model: Default::default(),
    };
    let _ = DomainSpec { nr_vcpus: 2 }; // type in scope for clarity
    let (mut plat, _) = xen_like::Platform::new(topo);
    let prof = guest_sim::profile(Benchmark::Freqmine, VirtMode::Para).scaled(16);
    guest_sim::load_workload(&mut plat.machine, 0, &prof);

    let mut m0 = xen_like::NullMonitor;
    let mut m1 = xen_like::NullMonitor;
    plat.boot(0, &mut m0);
    plat.boot(1, &mut m1);
    // Interleave activations on both CPUs.
    for _ in 0..400 {
        let a0 = plat.run_activation(0, &mut m0);
        assert!(a0.outcome.is_healthy(), "cpu0: {:?}", a0.outcome);
        let a1 = plat.run_activation(1, &mut m1);
        assert!(a1.outcome.is_healthy(), "cpu1: {:?}", a1.outcome);
    }
    let bursts = plat
        .machine
        .mem
        .peek(guest_sim::guest_addrs(0).iter_count)
        .unwrap();
    assert!(bursts > 100, "SMP guest made too little progress: {bursts}");
    // Both VCPUs ran guest code (their save areas differ from boot state).
    for v in 0..2 {
        let va = xen_like::layout::vcpu_addr(v);
        let rip = plat
            .machine
            .mem
            .peek(va + xen_like::layout::vcpu::SAVE_RIP * 8)
            .unwrap();
        assert_ne!(
            rip,
            xen_like::layout::guest_text(0),
            "vcpu {v} never advanced past its boot entry"
        );
    }
}

/// Device I/O accounting marches forward monotonically under load (the
/// console stream is the externally visible output the SDC classification
/// leans on).
#[test]
fn console_stream_is_monotone_under_io_load() {
    let mut plat = workload_platform(Benchmark::Postmark, VirtMode::Para, 2, 1, 8, 3);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    let mut last = plat.machine.devices.out_count;
    let mut grew = 0;
    for _ in 0..1500 {
        assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
        let now = plat.machine.devices.out_count;
        assert!(now >= last, "device output went backwards");
        if now > last {
            grew += 1;
        }
        last = now;
    }
    assert!(grew > 200, "console writes too rare for postmark: {grew}");
}
