//! Paper-shape fidelity checks: small-scale versions of the qualitative
//! claims every figure makes. These are the invariants EXPERIMENTS.md
//! reports at full scale.

use guest_sim::{measure_activation_rate, rate_stats, workload_platform, Benchmark};
use sim_machine::VirtMode;
use xentry::{measure_overhead, OverheadSetup, XentryConfig};

/// Fig. 3 shape: PV activation rates exceed HVM rates for every benchmark
/// (para-virtualization "provides more interfaces to VMs through hypercalls
/// that cause more hypervisor executions").
#[test]
fn pv_rates_exceed_hvm_rates() {
    for b in [Benchmark::Freqmine, Benchmark::Mcf, Benchmark::Postmark] {
        let rate = |mode| {
            let mut plat = workload_platform(b, mode, 2, 1, 1, 5);
            rate_stats(&measure_activation_rate(&mut plat, 1, 2, 0.002)).median
        };
        let pv = rate(VirtMode::Para);
        let hvm = rate(VirtMode::Hvm);
        assert!(
            pv > 1.5 * hvm,
            "{}: PV {pv:.0}/s should exceed HVM {hvm:.0}/s",
            b.name()
        );
    }
}

/// Fig. 3 shape: the hypercall-heavy workloads out-activate the CPU- and
/// memory-bound ones ("I/O intensive workloads ... make the hypervisor
/// frequently and heavily utilized").
#[test]
fn io_workloads_dominate_pv_activation_rates() {
    let rate = |b| {
        let mut plat = workload_platform(b, VirtMode::Para, 2, 1, 1, 9);
        rate_stats(&measure_activation_rate(&mut plat, 1, 2, 0.002)).median
    };
    let hot = rate(Benchmark::Postmark).max(rate(Benchmark::Freqmine));
    for b in [Benchmark::Mcf, Benchmark::Bzip2, Benchmark::Canneal] {
        assert!(
            hot > 2.0 * rate(b),
            "I/O workloads should dwarf {}",
            b.name()
        );
    }
}

/// Fig. 7 shape: overhead ordering follows activation frequency — postmark
/// pays the most, bzip2 the least; everything stays single-digit percent.
#[test]
fn overhead_ordering_and_magnitude() {
    let measure = |b| {
        let setup = OverheadSetup {
            benchmark: b,
            mode: VirtMode::Para,
            kernel_scale: 1, // paper-calibrated rates
            bursts: 500,
            seed: 31,
        };
        measure_overhead(&setup, XentryConfig::overhead()).overhead
    };
    let postmark = measure(Benchmark::Postmark);
    let bzip2 = measure(Benchmark::Bzip2);
    let mcf = measure(Benchmark::Mcf);
    assert!(postmark > bzip2, "postmark {postmark} vs bzip2 {bzip2}");
    assert!(postmark > mcf, "postmark {postmark} vs mcf {mcf}");
    assert!(postmark < 0.12, "postmark overhead blew up: {postmark}");
    assert!(bzip2 < 0.015, "bzip2 should be around sub-1%: {bzip2}");
    assert!(bzip2 > 0.0 && mcf > 0.0, "overhead must be positive");
}

/// Fig. 7 shape: runtime-only detection is strictly cheaper than the full
/// framework (the paper's shaded vs empty boxes).
#[test]
fn runtime_only_cheaper_than_full() {
    let setup = OverheadSetup {
        benchmark: Benchmark::Freqmine,
        mode: VirtMode::Para,
        kernel_scale: 1,
        bursts: 500,
        seed: 13,
    };
    let rt = measure_overhead(&setup, XentryConfig::runtime_only()).overhead;
    let full = measure_overhead(&setup, XentryConfig::overhead()).overhead;
    let recovery = measure_overhead(&setup, XentryConfig::with_recovery()).overhead;
    assert!(
        rt < full,
        "runtime-only {rt} should be cheaper than full {full}"
    );
    assert!(
        full < recovery,
        "recovery support {recovery} must cost more than full {full}"
    );
}

/// §VI: the recovery-state copy is the paper's measured 1,900 ns ≈ 4,047
/// cycles at 2.13 GHz — our default cost model must agree.
#[test]
fn recovery_copy_cost_matches_paper_measurement() {
    let costs = xentry::ShimCosts::default();
    assert!(
        (4000..4100).contains(&costs.state_copy),
        "state copy {}",
        costs.state_copy
    );
    let model = sim_machine::CycleModel::default();
    assert_eq!(model.ns_to_cycles(1_900), costs.state_copy);
}
