//! Detection-path integration tests: drive specific fault scenarios through
//! the full stack and verify which technique catches them — the mechanics
//! behind the paper's Fig. 8 split.

use faultsim::{inject, prepare_point, CampaignConfig, FaultOutcome, InjectionSpec};
use guest_sim::Benchmark;
use sim_machine::cpu::FlipTarget;
use sim_machine::Reg;
use xentry::{Technique, Xentry};

/// A prepared injection point on a warm platform.
fn make_point(seed: u64) -> faultsim::InjectionPoint {
    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, seed);
    let mut plat = faultsim::campaign_platform(&cfg, seed);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    for _ in 0..40 {
        let act = plat.run_activation(1, &mut shim);
        assert!(act.outcome.is_healthy());
    }
    let (reason, _) = plat.run_to_exit(1);
    prepare_point(plat, 1, 1, reason, 6, None).expect("golden run healthy")
}

#[test]
fn rip_high_bit_flip_is_caught_by_hardware_exception() {
    let point = make_point(5);
    // Flipping a high RIP bit lands in unmapped space: fetch fault.
    let rec = inject(
        &point,
        InjectionSpec {
            target: FlipTarget::Rip,
            bit: 40,
            at_step: point.golden_len / 2,
        },
        None,
    );
    match rec.outcome {
        FaultOutcome::Detected {
            technique: Technique::HwException,
            latency,
            same_activation,
            ..
        } => {
            assert!(
                latency <= 2,
                "fetch fault fires on the next instruction: {latency}"
            );
            assert!(same_activation);
        }
        other => panic!("expected hw-exception detection, got {other:?}"),
    }
}

#[test]
fn injections_cover_every_outcome_class() {
    // Sweep a grid of targets/bits/steps at one point: the taxonomy should
    // produce benign faults, detections and (rarely) undetected faults.
    let point = make_point(9);
    let mut benign = 0;
    let mut detected = 0;
    let mut other = 0;
    for (i, target) in FlipTarget::all().into_iter().enumerate() {
        for bit in [0u8, 7, 23, 47, 62] {
            let rec = inject(
                &point,
                InjectionSpec {
                    target,
                    bit,
                    at_step: (i as u64 * 13 + bit as u64) % point.golden_len,
                },
                None,
            );
            match rec.outcome {
                FaultOutcome::Benign | FaultOutcome::MaskedAfterEntry => benign += 1,
                FaultOutcome::Detected { .. } => detected += 1,
                FaultOutcome::Undetected { .. } => other += 1,
            }
        }
    }
    assert!(benign > 0, "no benign faults");
    assert!(detected > 0, "no detections");
    // Undetected faults are rare but allowed; the sum must match the grid.
    assert_eq!(benign + detected + other, FlipTarget::all().len() * 5);
}

#[test]
fn latency_is_measured_from_injection_point() {
    let point = make_point(21);
    // A flip at step k detected at step k+d must report roughly d.
    let rec = inject(
        &point,
        InjectionSpec {
            target: FlipTarget::Rip,
            bit: 45,
            at_step: 10,
        },
        None,
    );
    if let FaultOutcome::Detected { latency, .. } = rec.outcome {
        assert!(latency <= 3, "immediate fetch fault, got latency {latency}");
    } else {
        panic!("expected detection, got {:?}", rec.outcome);
    }
}

#[test]
fn golden_features_are_stable_across_prepares() {
    // Preparing the same point twice gives identical golden features —
    // the determinism the differencing methodology rests on.
    let a = make_point(33);
    let b = make_point(33);
    assert_eq!(a.reason, b.reason);
    assert_eq!(a.golden_features, b.golden_features);
    assert_eq!(a.golden_len, b.golden_len);
    assert_eq!(a.golden_post_bursts, b.golden_post_bursts);
    assert_eq!(a.golden_post_result, b.golden_post_result);
}

#[test]
fn stack_pointer_flips_mostly_fault() {
    // RSP corruption makes pushes/pops fault (high bits) — the classic
    // fatal-system-corruption path.
    let point = make_point(55);
    let mut detections = 0;
    let mut trials = 0;
    for bit in [30u8, 35, 40, 45, 50] {
        let rec = inject(
            &point,
            InjectionSpec {
                target: FlipTarget::Gpr(Reg::Rsp),
                bit,
                at_step: 5,
            },
            None,
        );
        trials += 1;
        if rec.outcome.detected() {
            detections += 1;
        }
    }
    assert!(
        detections * 2 >= trials,
        "high-bit RSP flips should mostly be caught: {detections}/{trials}"
    );
}
