//! Checkpoint-fork equivalence: the forked engine must reproduce the
//! from-boot engine exactly — same injections, same outcome for every
//! record — and both must match a golden corpus committed under
//! `tests/golden/`, so any future drift in the walk, the spec schedule
//! or the outcome taxonomy is caught as a diff against a pinned file.
//!
//! Regenerate the corpus (after an *intentional* engine change) with:
//!
//! ```text
//! XENTRY_UPDATE_GOLDEN=1 cargo test -p xentry-integration-tests \
//!     --test campaign_equivalence
//! ```

use faultsim::campaign::{golden_trace, run_campaign_from_boot, run_campaign_with};
use faultsim::{CampaignConfig, InjectionRecord};
use guest_sim::Benchmark;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn corpus_cfg() -> CampaignConfig {
    let mut c = CampaignConfig::paper(Benchmark::Freqmine, 48, 2014);
    c.warmup = 30;
    c.threads = 2;
    c
}

/// One corpus row: the spec that was injected and everything the engine
/// concluded about it. `FaultOutcome` serializes latency and consequence
/// fields too, so the pin covers the full outcome class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CorpusRecord {
    vmer: u16,
    target: String,
    bit: u8,
    at_step: u64,
    outcome: faultsim::FaultOutcome,
}

fn corpus_of(records: &[InjectionRecord]) -> Vec<CorpusRecord> {
    records
        .iter()
        .map(|r| CorpusRecord {
            vmer: r.vmer,
            target: format!("{:?}", r.target),
            bit: r.bit,
            at_step: r.at_step,
            outcome: r.outcome.clone(),
        })
        .collect()
}

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/campaign_corpus.json")
}

#[test]
fn forked_engine_matches_from_boot_and_the_golden_corpus() {
    let cfg = corpus_cfg();

    // Checkpoint-forked run.
    let trace = golden_trace(&cfg, None);
    let forked = run_campaign_with(&cfg, &trace, None);
    assert_eq!(forked.records.len(), cfg.injections);

    // From-boot reference: every injection replayed from a fresh boot.
    let boot = run_campaign_from_boot(&cfg, None);
    assert_eq!(
        serde_json::to_string(&boot).unwrap(),
        serde_json::to_string(&forked).unwrap(),
        "checkpoint forking changed the campaign result"
    );

    // Every outcome class from the from-boot campaign appears with the
    // same count in the forked one (implied by the byte equality above,
    // asserted separately so a future relaxation of the byte check still
    // guards the class distribution).
    let class = |rs: &[InjectionRecord]| {
        let mut m = std::collections::BTreeMap::new();
        for r in rs {
            *m.entry(format!("{:?}", std::mem::discriminant(&r.outcome)))
                .or_insert(0usize) += 1;
        }
        m
    };
    assert_eq!(class(&boot.records), class(&forked.records));

    // Pin against the committed corpus.
    let got = corpus_of(&forked.records);
    let path = corpus_path();
    if std::env::var("XENTRY_UPDATE_GOLDEN").is_ok() {
        faultsim::write_atomic(
            &path,
            serde_json::to_string_pretty(&got).unwrap().as_bytes(),
        )
        .unwrap();
        eprintln!("regenerated {path:?}");
        return;
    }
    let want: Vec<CorpusRecord> = serde_json::from_str(
        &std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden corpus {path:?}: {e}")),
    )
    .expect("golden corpus parses");
    assert_eq!(got.len(), want.len(), "corpus length changed");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g, w, "corpus record {i} diverged");
    }
}
