//! Checkpoint-fork equivalence: the forked engine must reproduce the
//! from-boot engine exactly — same injections, same outcome for every
//! record — and both must match a golden corpus committed under
//! `tests/golden/`, so any future drift in the walk, the spec schedule
//! or the outcome taxonomy is caught as a diff against a pinned file.
//!
//! The corpus covers every fault model the engine can produce: `reg`
//! (the paper's single-bit register flips) plus the extended models
//! `burst` (spatial multi-bit), `pte` (page-table-entry strikes) and
//! `pmc` (performance-counter strikes).
//!
//! Regenerate the corpus (after an *intentional* engine change) with:
//!
//! ```text
//! XENTRY_UPDATE_GOLDEN=1 cargo test -p xentry-integration-tests \
//!     --test campaign_equivalence
//! ```

use faultsim::campaign::{
    golden_trace, run_campaign_from_boot, run_campaign_with, run_model_campaign_with,
};
use faultsim::{CampaignConfig, InjectionRecord, ModelRecord};
use guest_sim::Benchmark;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn corpus_cfg() -> CampaignConfig {
    let mut c = CampaignConfig::paper(Benchmark::Freqmine, 48, 2014);
    c.warmup = 30;
    c.threads = 2;
    c
}

/// One corpus row: the spec that was injected and everything the engine
/// concluded about it. `FaultOutcome` serializes latency and consequence
/// fields too, so the pin covers the full outcome class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CorpusRecord {
    vmer: u16,
    target: String,
    bit: u8,
    at_step: u64,
    outcome: faultsim::FaultOutcome,
}

/// One extended-model corpus row ([`ModelRecord`] minus the features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModelCorpusRecord {
    ordinal: usize,
    vmer: u16,
    class: String,
    target: String,
    bit: u8,
    at_step: u64,
    outcome: faultsim::FaultOutcome,
}

/// The committed corpus: one pinned record list per fault model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Corpus {
    reg: Vec<CorpusRecord>,
    burst: Vec<ModelCorpusRecord>,
    pte: Vec<ModelCorpusRecord>,
    pmc: Vec<ModelCorpusRecord>,
}

fn corpus_of(records: &[InjectionRecord]) -> Vec<CorpusRecord> {
    records
        .iter()
        .map(|r| CorpusRecord {
            vmer: r.vmer,
            target: format!("{:?}", r.target),
            bit: r.bit,
            at_step: r.at_step,
            outcome: r.outcome.clone(),
        })
        .collect()
}

fn model_corpus_of(records: &[ModelRecord], class: &str) -> Vec<ModelCorpusRecord> {
    records
        .iter()
        .filter(|r| r.class == class)
        .map(|r| ModelCorpusRecord {
            ordinal: r.ordinal,
            vmer: r.vmer,
            class: r.class.clone(),
            target: r.target.clone(),
            bit: r.bit,
            at_step: r.at_step,
            outcome: r.outcome.clone(),
        })
        .collect()
}

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/campaign_corpus.json")
}

#[test]
fn forked_engine_matches_from_boot_and_the_golden_corpus() {
    let cfg = corpus_cfg();

    // Checkpoint-forked run.
    let trace = golden_trace(&cfg, None);
    let forked = run_campaign_with(&cfg, &trace, None);
    assert_eq!(forked.records.len(), cfg.injections);

    // From-boot reference: every injection replayed from a fresh boot.
    let boot = run_campaign_from_boot(&cfg, None);
    assert_eq!(
        serde_json::to_string(&boot).unwrap(),
        serde_json::to_string(&forked).unwrap(),
        "checkpoint forking changed the campaign result"
    );

    // Every outcome class from the from-boot campaign appears with the
    // same count in the forked one (implied by the byte equality above,
    // asserted separately so a future relaxation of the byte check still
    // guards the class distribution).
    let class = |rs: &[InjectionRecord]| {
        let mut m = std::collections::BTreeMap::new();
        for r in rs {
            *m.entry(format!("{:?}", std::mem::discriminant(&r.outcome)))
                .or_insert(0usize) += 1;
        }
        m
    };
    assert_eq!(class(&boot.records), class(&forked.records));

    // Extended-model campaign over the same golden trace, byte-identical
    // across thread counts (the model schedule is a pure function of the
    // config, and chunks reassemble in id order).
    let model = run_model_campaign_with(&cfg, &trace, None);
    assert_eq!(model.records.len(), cfg.injections);
    let mut serial_cfg = cfg.clone();
    serial_cfg.threads = 1;
    let serial = run_model_campaign_with(&serial_cfg, &trace, None);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&model).unwrap(),
        "thread count changed the model-campaign result"
    );

    // Pin every fault model against the committed corpus.
    let got = Corpus {
        reg: corpus_of(&forked.records),
        burst: model_corpus_of(&model.records, "burst"),
        pte: model_corpus_of(&model.records, "pte"),
        pmc: model_corpus_of(&model.records, "pmc"),
    };
    for (name, len) in [
        ("burst", got.burst.len()),
        ("pte", got.pte.len()),
        ("pmc", got.pmc.len()),
    ] {
        assert!(len > 0, "model campaign produced no {name} records");
    }
    let path = corpus_path();
    if std::env::var("XENTRY_UPDATE_GOLDEN").is_ok() {
        faultsim::write_atomic(
            &path,
            serde_json::to_string_pretty(&got).unwrap().as_bytes(),
        )
        .unwrap();
        eprintln!("regenerated {path:?}");
        return;
    }
    let want: Corpus = serde_json::from_str(
        &std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden corpus {path:?}: {e}")),
    )
    .expect("golden corpus parses");
    assert_eq!(got.reg.len(), want.reg.len(), "reg corpus length changed");
    for (i, (g, w)) in got.reg.iter().zip(want.reg.iter()).enumerate() {
        assert_eq!(g, w, "reg corpus record {i} diverged");
    }
    for (name, g_rows, w_rows) in [
        ("burst", &got.burst, &want.burst),
        ("pte", &got.pte, &want.pte),
        ("pmc", &got.pmc, &want.pmc),
    ] {
        assert_eq!(g_rows.len(), w_rows.len(), "{name} corpus length changed");
        for (i, (g, w)) in g_rows.iter().zip(w_rows.iter()).enumerate() {
            assert_eq!(g, w, "{name} corpus record {i} diverged");
        }
    }
}
