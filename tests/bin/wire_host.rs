//! Host-agent child image for the distributed integration test.
//!
//! `tests/fleet_distributed.rs` points `DistributedConfig::child_exe`
//! at this binary (via `CARGO_BIN_EXE_wire-host`); all the real logic
//! lives in `xentry_wire::distributed`.

fn main() {
    if !xentry_wire::maybe_child_main() {
        eprintln!(
            "wire-host is the distributed-replay child image; \
             it only runs when spawned by xentry_wire::run_distributed"
        );
        std::process::exit(2);
    }
}
