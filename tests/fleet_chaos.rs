//! Service-level fault injection: the fleet must survive panicking
//! detectors, corrupted candidate models, stalled shards, and queue
//! saturation without losing records silently. The full harness lives in
//! `xentry_fleet::chaos`; this file runs it end-to-end and additionally
//! pins each failure mode in isolation so a regression points at one
//! mechanism instead of "the chaos run went red".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xentry_fleet::{
    replay, ChaosConfig, CollectSink, FleetConfig, FleetService, VerdictSink, VerdictSource,
};

/// Block until `pred` holds or fail with `what` after 10 s.
fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn drained(svc: &FleetService) -> bool {
    let snap = svc.snapshot();
    snap.classified + snap.lost == snap.ingested
}

#[test]
fn chaos_harness_runs_clean() {
    let report = xentry_fleet::run_chaos(&ChaosConfig {
        hosts: 4,
        records_per_host: 8_000,
        shards: 4,
        seed: 42,
        rate_per_host: 8_000.0,
        probes_per_shard: 128,
        deadline_ms: 20_000,
    });
    report.assert_clean();

    // Clean is necessary but not sufficient: the injections must have
    // actually exercised every fault path, or the invariants held
    // vacuously.
    let s = &report.snapshot;
    assert!(s.restarts >= 2, "panic + storm restarts: {}", s.restarts);
    assert!(s.stalls >= 1, "watchdog never fired");
    assert!(s.lost > 0, "panics must abandon (and count) records");
    assert_eq!(report.rejected_swaps, 2, "both corrupt candidates rejected");
    assert_eq!(report.valid_swaps, 1);
    assert_eq!(s.swap_rejections, report.rejected_swaps);
    assert!(s.rollbacks >= 1, "panic storm never rolled back");
    assert!(report.rollback_restored_fingerprint);
    assert!(s.degraded_entries >= 1, "storm never degraded the service");
    assert!(
        report.degraded_seen > 0,
        "no envelope verdicts reached the sink"
    );
    assert!(
        report.burst_rejected > 0,
        "saturation burst never overflowed"
    );
    assert!(report.parity_checked > 0);
    assert_eq!(report.parity_mismatches, 0);
}

/// Isolated scenario: N injected detector panics. Every abandoned record
/// is counted as lost, the worker restarts N times, and the sink sees
/// exactly the classified records.
#[test]
fn injected_panics_lose_nothing_silently() {
    struct CountingSink(AtomicU64);
    impl VerdictSink for CountingSink {
        fn on_verdict(&self, _v: &xentry_fleet::FleetVerdict) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let sink = Arc::new(CountingSink(AtomicU64::new(0)));
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: 1 << 13,
        batch: 32,
        recorder_depth: 8,
        restart_backoff_ms: 1,
        restart_backoff_cap_ms: 8,
        stall_timeout_ms: 0, // isolate: no watchdog
        rollback_after: 0,   // isolate: no rollback escalation
        degrade_after: 100,  // isolate: no degraded escalation
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, replay::synthetic_detector(1), Arc::clone(&sink) as _);
    svc.failpoints().inject_panics(0, 3);

    let trace = replay::synthetic_trace(1024, 3);
    let mut accepted = 0u64;
    for (i, f) in trace.iter().cycle().take(4000).enumerate() {
        if svc.ingest(0, 0, i as u64, *f) {
            accepted += 1;
        }
    }
    wait_for("panic recovery + drain", || {
        svc.snapshot().restarts >= 3 && drained(&svc)
    });
    svc.failpoints().disarm();
    let snap = svc.shutdown();

    assert_eq!(snap.ingested, accepted);
    assert_eq!(snap.restarts, 3, "one restart per injected panic");
    assert!(
        snap.lost >= 3,
        "each panicking batch had >= 1 in-flight record"
    );
    assert!(
        snap.lost <= 3 * 32,
        "lost more than three batches: {}",
        snap.lost
    );
    assert_eq!(snap.classified + snap.lost, snap.ingested);
    assert_eq!(sink.0.load(Ordering::Relaxed), snap.classified);
    assert_eq!(snap.rollbacks, 0);
    assert!(!snap.degraded);
}

/// Isolated scenario: a stalled worker is superseded by the watchdog
/// without losing its in-flight batch — the replacement drains the queue
/// while the stalled worker finishes what it holds and exits.
#[test]
fn stalled_shard_is_superseded_without_loss() {
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: 1 << 13,
        batch: 32,
        recorder_depth: 8,
        stall_timeout_ms: 40,
        rollback_after: 0,
        degrade_after: 0,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(
        cfg,
        replay::synthetic_detector(1),
        Arc::new(CollectSink::default()),
    );
    svc.failpoints().inject_stall(0, Duration::from_millis(300));

    let trace = replay::synthetic_trace(512, 5);
    let mut accepted = 0u64;
    for (i, f) in trace.iter().cycle().take(2000).enumerate() {
        if svc.ingest(0, 0, i as u64, *f) {
            accepted += 1;
        }
    }
    wait_for("stall detection", || svc.snapshot().stalls >= 1);
    // The replacement worker must keep verdicts flowing while the
    // stalled one is still asleep.
    for (i, f) in trace.iter().cycle().take(2000).enumerate() {
        if svc.ingest(0, 0, (2000 + i) as u64, *f) {
            accepted += 1;
        }
    }
    wait_for("post-stall drain", || drained(&svc));
    svc.failpoints().disarm();
    let snap = svc.shutdown();

    assert_eq!(snap.ingested, accepted);
    assert!(snap.stalls >= 1);
    assert!(snap.restarts >= 1, "stall must count as a restart");
    assert_eq!(snap.lost, 0, "supersession must not abandon records");
    assert_eq!(snap.classified, snap.ingested);
}

/// Isolated scenario: a panic storm flips the service into degraded mode;
/// verdicts keep flowing tagged `DegradedEnvelope` instead of records
/// burning in restart loops, and `exit_degraded` restores the model path.
#[test]
fn panic_storm_degrades_then_recovers_to_model_verdicts() {
    let sink = Arc::new(CollectSink::default());
    let cfg = FleetConfig {
        shards: 1,
        queue_capacity: 1 << 13,
        batch: 16,
        recorder_depth: 8,
        restart_backoff_ms: 1,
        restart_backoff_cap_ms: 4,
        stall_timeout_ms: 0,
        rollback_after: 0, // version 1 has no previous epoch anyway
        degrade_after: 2,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, replay::synthetic_detector(1), Arc::clone(&sink) as _);
    svc.failpoints().inject_panics(0, 1000);

    let trace = replay::synthetic_trace(512, 7);
    let mut seq = 0u64;
    let mut send = |svc: &FleetService, n: usize| {
        for f in trace.iter().cycle().take(n) {
            if svc.ingest(0, 0, seq, *f) {
                seq += 1;
            }
        }
    };

    // Feed the storm until the consecutive-panic ladder trips.
    wait_for("degraded entry", || {
        send(&svc, 64);
        svc.degraded()
    });
    // Degraded workers bypass the (model-path) failpoint, so these flow.
    send(&svc, 500);
    wait_for("envelope verdicts", || svc.snapshot().degraded_verdicts > 0);

    svc.failpoints().disarm();
    svc.exit_degraded();
    assert!(!svc.degraded());
    send(&svc, 500);
    wait_for("post-recovery drain", || drained(&svc));
    let snap = svc.shutdown();

    assert_eq!(snap.degraded_entries, 1);
    assert!(snap.degraded_verdicts > 0);
    assert_eq!(snap.classified + snap.lost, snap.ingested);

    let verdicts = sink.verdicts.lock().unwrap();
    assert_eq!(verdicts.len() as u64, snap.classified);
    let degraded_count = verdicts
        .iter()
        .filter(|v| v.source == VerdictSource::DegradedEnvelope)
        .count() as u64;
    assert_eq!(degraded_count, snap.degraded_verdicts);
    // The model path resumed: the tail of the stream (sent after
    // exit_degraded) is Model-sourced again.
    let last = verdicts.last().expect("verdicts collected");
    assert_eq!(last.source, VerdictSource::Model);
}
